//! Classification metrics used by the experiment harness.

use stepping_tensor::{reduce, Tensor};

use crate::{NnError, Result};

/// Top-1 accuracy of `logits` (`[n, classes]`) against integer `targets`.
///
/// # Errors
///
/// Returns [`NnError::BadTarget`] when the target count disagrees with the
/// batch size or the batch is empty.
///
/// # Example
///
/// ```
/// use stepping_nn::metrics::accuracy;
/// use stepping_tensor::{Shape, Tensor};
///
/// let logits = Tensor::from_vec(Shape::of(&[2, 2]), vec![1.0, 0.0, 0.0, 1.0])?;
/// assert_eq!(accuracy(&logits, &[0, 1])?, 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> Result<f32> {
    let preds = predictions(logits)?;
    if preds.len() != targets.len() {
        return Err(NnError::BadTarget(format!(
            "{} targets for {} samples",
            targets.len(),
            preds.len()
        )));
    }
    if preds.is_empty() {
        return Err(NnError::BadTarget("empty batch".into()));
    }
    let correct = preds
        .iter()
        .zip(targets.iter())
        .filter(|(p, t)| p == t)
        .count();
    Ok(correct as f32 / preds.len() as f32)
}

/// Argmax class predictions for a `[n, classes]` logits matrix.
///
/// # Errors
///
/// Returns a tensor error for non-matrix input.
pub fn predictions(logits: &Tensor) -> Result<Vec<usize>> {
    Ok(reduce::argmax_rows(logits)?)
}

/// Top-k accuracy: a sample counts as correct when the target class is among
/// the `k` highest logits.
///
/// # Errors
///
/// Returns [`NnError::BadTarget`] when `k` is zero or exceeds the class
/// count, or for target/batch mismatches.
pub fn top_k_accuracy(logits: &Tensor, targets: &[usize], k: usize) -> Result<f32> {
    if logits.shape().rank() != 2 {
        return Err(NnError::BadTarget(format!(
            "logits must be [n, classes], got {}",
            logits.shape()
        )));
    }
    let (n, c) = (logits.shape().dims()[0], logits.shape().dims()[1]);
    if k == 0 || k > c {
        return Err(NnError::BadTarget(format!("k {k} must be in 1..={c}")));
    }
    if targets.len() != n || n == 0 {
        return Err(NnError::BadTarget(format!(
            "{} targets for {n} samples",
            targets.len()
        )));
    }
    let mut correct = 0;
    for (i, &t) in targets.iter().enumerate() {
        let row = &logits.data()[i * c..(i + 1) * c];
        let target_val = row[t];
        // Rank = number of strictly larger entries; ties resolve in favour
        // of the target, matching common top-k implementations.
        let rank = row.iter().filter(|&&v| v > target_val).count();
        if rank < k {
            correct += 1;
        }
    }
    Ok(correct as f32 / n as f32)
}

/// A `classes × classes` confusion matrix; `matrix[actual][predicted]`.
///
/// # Errors
///
/// Returns [`NnError::BadTarget`] for target/batch mismatches or
/// out-of-range classes.
pub fn confusion_matrix(
    logits: &Tensor,
    targets: &[usize],
    classes: usize,
) -> Result<Vec<Vec<u32>>> {
    let preds = predictions(logits)?;
    if preds.len() != targets.len() {
        return Err(NnError::BadTarget(format!(
            "{} targets for {} samples",
            targets.len(),
            preds.len()
        )));
    }
    let mut m = vec![vec![0u32; classes]; classes];
    for (&p, &t) in preds.iter().zip(targets.iter()) {
        if t >= classes || p >= classes {
            return Err(NnError::BadTarget(format!(
                "class out of range: target {t}, pred {p}"
            )));
        }
        m[t][p] += 1;
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepping_tensor::Shape;

    fn logits() -> Tensor {
        Tensor::from_vec(
            Shape::of(&[3, 3]),
            vec![
                3.0, 1.0, 2.0, // pred 0
                0.0, 5.0, 1.0, // pred 1
                1.0, 2.0, 0.0, // pred 1
            ],
        )
        .unwrap()
    }

    #[test]
    fn accuracy_counts_matches() {
        assert!((accuracy(&logits(), &[0, 1, 2]).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&logits(), &[0, 1, 1]).unwrap(), 1.0);
    }

    #[test]
    fn accuracy_validates_lengths() {
        assert!(accuracy(&logits(), &[0]).is_err());
        assert!(accuracy(&Tensor::zeros(Shape::of(&[0, 3])), &[]).is_err());
    }

    #[test]
    fn top_k_widens_acceptance() {
        let l = logits();
        // sample 2: target 2 has logit 0.0 (rank 3) → wrong even at k=2
        assert!((top_k_accuracy(&l, &[0, 1, 2], 1).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert!((top_k_accuracy(&l, &[0, 1, 2], 2).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(top_k_accuracy(&l, &[0, 1, 2], 3).unwrap(), 1.0);
        assert!(top_k_accuracy(&l, &[0, 1, 2], 0).is_err());
        assert!(top_k_accuracy(&l, &[0, 1, 2], 4).is_err());
    }

    #[test]
    fn confusion_matrix_diagonal_is_correct_count() {
        let m = confusion_matrix(&logits(), &[0, 1, 2], 3).unwrap();
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[2][1], 1); // actual 2 predicted 1
        assert_eq!(m[2][2], 0);
    }
}
