use rand::rngs::StdRng;
use rand::Rng;
use stepping_tensor::{init, Shape, Tensor};

use crate::{Layer, NnError, Result};

/// Inverted dropout: during training each element is zeroed with probability
/// `p` and survivors are scaled by `1/(1-p)`; inference is the identity.
///
/// The layer owns a seeded RNG so whole training runs stay reproducible.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and RNG `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        Dropout {
            p,
            rng: init::rng(seed),
            cached_mask: None,
        }
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "Dropout"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        if !train || self.p == 0.0 {
            // Identity at inference; mark mask as all-keep for backward.
            self.cached_mask = Some(Tensor::ones(input.shape().clone()));
            return Ok(input.clone());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = Tensor::zeros(input.shape().clone());
        for m in mask.data_mut() {
            if self.rng.random::<f32>() < keep {
                *m = scale;
            }
        }
        let out = input.zip(&mask, |x, m| x * m)?;
        self.cached_mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self
            .cached_mask
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "Dropout" })?;
        Ok(grad_out.zip(mask, |g, m| g * m)?)
    }

    fn output_shape(&self, input: &Shape) -> Option<Shape> {
        Some(input.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        let x = Tensor::ones(Shape::of(&[4, 4]));
        assert_eq!(d.forward(&x, false).unwrap(), x);
    }

    #[test]
    fn train_zeroes_roughly_p_fraction_and_scales() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::ones(Shape::of(&[100, 100]));
        let y = d.forward(&x, true).unwrap();
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / y.len() as f32;
        assert!((frac - 0.5).abs() < 0.05, "zero fraction {frac}");
        // survivors are scaled by 2
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::ones(Shape::of(&[10, 10]));
        let y = d.forward(&x, true).unwrap();
        let g = d.backward(&Tensor::ones(Shape::of(&[10, 10]))).unwrap();
        assert_eq!(g, y);
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn rejects_p_of_one() {
        let _ = Dropout::new(1.0, 0);
    }
}
