use stepping_tensor::{Shape, Tensor};

use crate::Result;

/// Per-element learning-rate scaling for a parameter.
///
/// SteppingNet's weight-update suppression (paper §III-A2) reduces the
/// learning rate of weights owned by smaller subnets by `β^(j−i)` while a
/// larger subnet `j` trains. The optimizer multiplies each element's update
/// by this scale.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamLr {
    /// Every element uses the optimizer's base learning rate.
    Uniform,
    /// Element `i`'s update is scaled by `scale.data()[i]` (same shape as the
    /// parameter).
    PerElement(Tensor),
}

/// A trainable parameter: value, accumulated gradient, and learning-rate
/// scaling.
///
/// # Example
///
/// ```
/// use stepping_nn::Param;
/// use stepping_tensor::{Shape, Tensor};
///
/// let p = Param::new(Tensor::zeros(Shape::of(&[3, 3])));
/// assert_eq!(p.grad.shape(), p.value.shape());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass.
    pub grad: Tensor,
    /// Per-element learning-rate scaling (see [`ParamLr`]).
    pub lr: ParamLr,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient and uniform LR.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param {
            value,
            grad,
            lr: ParamLr::Uniform,
        }
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Sets a per-element learning-rate scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale`'s shape differs from the parameter's shape.
    pub fn set_lr_scale(&mut self, scale: Tensor) {
        assert_eq!(
            scale.shape(),
            self.value.shape(),
            "lr scale shape must match parameter shape"
        );
        self.lr = ParamLr::PerElement(scale);
    }

    /// Removes any per-element learning-rate scale.
    pub fn clear_lr_scale(&mut self) {
        self.lr = ParamLr::Uniform;
    }

    /// Effective per-element scale at flat index `i` (1.0 when uniform).
    pub fn lr_scale_at(&self, i: usize) -> f32 {
        match &self.lr {
            ParamLr::Uniform => 1.0,
            ParamLr::PerElement(t) => t.data()[i],
        }
    }
}

/// A differentiable network layer with explicit forward/backward passes.
///
/// The trait is object-safe; heterogeneous stacks compose through
/// [`Sequential`](crate::Sequential). Implementations cache whatever they
/// need during `forward` and consume it in `backward`.
///
/// Contract:
/// * `forward(x, train)` — `train` selects training behaviour (batch-norm
///   batch statistics, dropout sampling); inference uses running statistics
///   and identity dropout.
/// * `backward(grad_out)` must be called after `forward` with a gradient of
///   the same shape as the forward output; it accumulates parameter
///   gradients (adding to `Param::grad`) and returns the gradient w.r.t. the
///   layer input.
pub trait Layer: std::fmt::Debug + Send {
    /// Human-readable layer kind (for diagnostics and error messages).
    fn name(&self) -> &'static str;

    /// Computes the layer output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`](crate::NnError) when the input shape is invalid.
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor>;

    /// Back-propagates `grad_out`, accumulating parameter gradients, and
    /// returns the gradient with respect to the layer's input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`](crate::NnError) if no
    /// forward activation is cached, or shape errors if `grad_out` does not
    /// match the forward output.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// Mutable access to the layer's trainable parameters (empty for
    /// stateless layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Shape of the output for a given input shape, if the layer can compute
    /// it statically (used for model summaries and MAC accounting).
    fn output_shape(&self, input: &Shape) -> Option<Shape> {
        let _ = input;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_starts_with_zero_grad_and_uniform_lr() {
        let p = Param::new(Tensor::ones(Shape::of(&[2, 2])));
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.lr_scale_at(3), 1.0);
    }

    #[test]
    fn lr_scale_round_trip() {
        let mut p = Param::new(Tensor::ones(Shape::of(&[2])));
        p.set_lr_scale(Tensor::from_vec(Shape::of(&[2]), vec![0.5, 0.25]).unwrap());
        assert_eq!(p.lr_scale_at(0), 0.5);
        assert_eq!(p.lr_scale_at(1), 0.25);
        p.clear_lr_scale();
        assert_eq!(p.lr_scale_at(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "lr scale shape")]
    fn lr_scale_rejects_wrong_shape() {
        let mut p = Param::new(Tensor::ones(Shape::of(&[2])));
        p.set_lr_scale(Tensor::ones(Shape::of(&[3])));
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(Shape::of(&[2])));
        p.grad.fill(5.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}
