//! Learning-rate schedules.
//!
//! Schedules map an epoch index to a multiplier on the base learning rate;
//! training loops apply them via [`Sgd::set_lr`](crate::optim::Sgd::set_lr).

/// A learning-rate schedule: multiplier per epoch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LrSchedule {
    /// Constant learning rate.
    #[default]
    Constant,
    /// Multiply by `factor` every epoch (`factor ∈ (0, 1]`).
    Exponential {
        /// Per-epoch decay factor.
        factor: f32,
    },
    /// Multiply by `factor` every `every` epochs.
    Step {
        /// Per-step decay factor.
        factor: f32,
        /// Epochs between decays.
        every: usize,
    },
}

impl LrSchedule {
    /// The learning-rate multiplier at `epoch` (epoch 0 is always 1.0).
    ///
    /// # Example
    ///
    /// ```
    /// use stepping_nn::schedule::LrSchedule;
    ///
    /// let s = LrSchedule::Step { factor: 0.5, every: 2 };
    /// assert_eq!(s.multiplier(0), 1.0);
    /// assert_eq!(s.multiplier(3), 0.5);
    /// assert_eq!(s.multiplier(4), 0.25);
    /// ```
    pub fn multiplier(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Exponential { factor } => factor.powi(epoch as i32),
            LrSchedule::Step { factor, every } => match epoch.checked_div(every) {
                Some(steps) => factor.powi(steps as i32),
                None => 1.0,
            },
        }
    }

    /// Whether the schedule's parameters are in range (factors in `(0, 1]`).
    pub fn is_valid(&self) -> bool {
        match *self {
            LrSchedule::Constant => true,
            LrSchedule::Exponential { factor } | LrSchedule::Step { factor, .. } => {
                factor > 0.0 && factor <= 1.0 && factor.is_finite()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one_everywhere() {
        for e in [0usize, 1, 100] {
            assert_eq!(LrSchedule::Constant.multiplier(e), 1.0);
        }
    }

    #[test]
    fn exponential_decays_geometrically() {
        let s = LrSchedule::Exponential { factor: 0.9 };
        assert_eq!(s.multiplier(0), 1.0);
        assert!((s.multiplier(2) - 0.81).abs() < 1e-6);
    }

    #[test]
    fn step_holds_between_decays() {
        let s = LrSchedule::Step {
            factor: 0.1,
            every: 3,
        };
        assert_eq!(s.multiplier(2), 1.0);
        assert!((s.multiplier(3) - 0.1).abs() < 1e-7);
        assert!((s.multiplier(5) - 0.1).abs() < 1e-7);
        assert!((s.multiplier(6) - 0.01).abs() < 1e-8);
        // degenerate `every = 0` never decays rather than panicking
        assert_eq!(
            LrSchedule::Step {
                factor: 0.5,
                every: 0
            }
            .multiplier(9),
            1.0
        );
    }

    #[test]
    fn validity() {
        assert!(LrSchedule::Constant.is_valid());
        assert!(LrSchedule::Exponential { factor: 1.0 }.is_valid());
        assert!(!LrSchedule::Exponential { factor: 0.0 }.is_valid());
        assert!(!LrSchedule::Step {
            factor: 1.5,
            every: 2
        }
        .is_valid());
        assert!(!LrSchedule::Exponential { factor: f32::NAN }.is_valid());
    }
}
