//! Optimizers.
//!
//! Both optimizers honour per-element learning-rate scaling
//! ([`ParamLr::PerElement`](crate::ParamLr)) — the mechanism behind
//! SteppingNet's weight-update suppression (`β^(j−i)`, paper §III-A2): the
//! effective step for element `e` of parameter `p` is
//! `base_lr · p.lr_scale_at(e) · update(e)`.

use stepping_tensor::Tensor;

use crate::{NnError, Param, Result};

/// Stochastic gradient descent with momentum and decoupled weight decay.
///
/// # Example
///
/// ```
/// use stepping_nn::{optim::Sgd, Param};
/// use stepping_tensor::{Shape, Tensor};
///
/// let mut p = Param::new(Tensor::ones(Shape::of(&[2])));
/// p.grad.fill(1.0);
/// let mut sgd = Sgd::new(0.1)?;
/// sgd.step(&mut [&mut p])?;
/// assert_eq!(p.value.data(), &[0.9, 0.9]);
/// # Ok::<(), stepping_nn::NnError>(())
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadHyperParameter`] if `lr` is not positive and
    /// finite.
    pub fn new(lr: f32) -> Result<Self> {
        Self::with_momentum(lr, 0.0, 0.0)
    }

    /// SGD with momentum and L2 weight decay.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadHyperParameter`] for a non-positive `lr`,
    /// `momentum` outside `[0, 1)`, or negative `weight_decay`.
    pub fn with_momentum(lr: f32, momentum: f32, weight_decay: f32) -> Result<Self> {
        if !(lr.is_finite() && lr > 0.0) {
            return Err(NnError::BadHyperParameter(format!(
                "lr {lr} must be positive"
            )));
        }
        if !(0.0..1.0).contains(&momentum) {
            return Err(NnError::BadHyperParameter(format!(
                "momentum {momentum} must be in [0, 1)"
            )));
        }
        if weight_decay < 0.0 {
            return Err(NnError::BadHyperParameter(format!(
                "weight decay {weight_decay} must be non-negative"
            )));
        }
        Ok(Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        })
    }

    /// Current base learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the base learning rate (for schedules).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadHyperParameter`] if `lr` is not positive finite.
    pub fn set_lr(&mut self, lr: f32) -> Result<()> {
        if !(lr.is_finite() && lr > 0.0) {
            return Err(NnError::BadHyperParameter(format!(
                "lr {lr} must be positive"
            )));
        }
        self.lr = lr;
        Ok(())
    }

    /// Applies one update to `params` (order must be stable across calls so
    /// momentum buffers stay aligned).
    ///
    /// # Errors
    ///
    /// Returns a tensor error if a parameter changed shape between steps.
    pub fn step(&mut self, params: &mut [&mut Param]) -> Result<()> {
        if self.velocity.len() < params.len() {
            for p in params[self.velocity.len()..].iter() {
                self.velocity.push(Tensor::zeros(p.value.shape().clone()));
            }
        }
        for (pi, p) in params.iter_mut().enumerate() {
            let v = &mut self.velocity[pi];
            if v.shape() != p.value.shape() {
                return Err(NnError::BadInput(format!(
                    "parameter {pi} changed shape: momentum buffer {} vs value {}",
                    v.shape(),
                    p.value.shape()
                )));
            }
            let n = p.value.len();
            for e in 0..n {
                let mut g = p.grad.data()[e];
                if self.weight_decay > 0.0 {
                    g += self.weight_decay * p.value.data()[e];
                }
                let vd = v.data_mut();
                vd[e] = self.momentum * vd[e] + g;
                let scale = p.lr_scale_at(e);
                p.value.data_mut()[e] -= self.lr * scale * vd[e];
            }
        }
        Ok(())
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the conventional defaults `β₁ = 0.9`, `β₂ = 0.999`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadHyperParameter`] if `lr` is not positive finite.
    pub fn new(lr: f32) -> Result<Self> {
        if !(lr.is_finite() && lr > 0.0) {
            return Err(NnError::BadHyperParameter(format!(
                "lr {lr} must be positive"
            )));
        }
        Ok(Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        })
    }

    /// Current base learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies one update to `params` (stable ordering required, as with
    /// [`Sgd::step`]).
    ///
    /// # Errors
    ///
    /// Returns an error if a parameter changed shape between steps.
    pub fn step(&mut self, params: &mut [&mut Param]) -> Result<()> {
        self.t += 1;
        while self.m.len() < params.len() {
            let shape = params[self.m.len()].value.shape().clone();
            self.m.push(Tensor::zeros(shape.clone()));
            self.v.push(Tensor::zeros(shape));
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (pi, p) in params.iter_mut().enumerate() {
            if self.m[pi].shape() != p.value.shape() {
                return Err(NnError::BadInput(format!(
                    "parameter {pi} changed shape: moment buffer {} vs value {}",
                    self.m[pi].shape(),
                    p.value.shape()
                )));
            }
            let n = p.value.len();
            for e in 0..n {
                let g = p.grad.data()[e];
                let md = self.m[pi].data_mut();
                md[e] = self.beta1 * md[e] + (1.0 - self.beta1) * g;
                let mhat = md[e] / bc1;
                let vd = self.v[pi].data_mut();
                vd[e] = self.beta2 * vd[e] + (1.0 - self.beta2) * g * g;
                let vhat = vd[e] / bc2;
                let scale = p.lr_scale_at(e);
                p.value.data_mut()[e] -= self.lr * scale * mhat / (vhat.sqrt() + self.eps);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepping_tensor::Shape;

    fn param(vals: &[f32]) -> Param {
        Param::new(Tensor::from_vec(Shape::of(&[vals.len()]), vals.to_vec()).unwrap())
    }

    #[test]
    fn sgd_plain_step() {
        let mut p = param(&[1.0, 2.0]);
        p.grad = Tensor::from_vec(Shape::of(&[2]), vec![0.5, -0.5]).unwrap();
        let mut sgd = Sgd::new(0.2).unwrap();
        sgd.step(&mut [&mut p]).unwrap();
        assert_eq!(p.value.data(), &[0.9, 2.1]);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let mut p = param(&[0.0]);
        let mut sgd = Sgd::with_momentum(1.0, 0.5, 0.0).unwrap();
        p.grad.fill(1.0);
        sgd.step(&mut [&mut p]).unwrap(); // v=1, w=-1
        sgd.step(&mut [&mut p]).unwrap(); // v=1.5, w=-2.5
        assert!((p.value.data()[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn sgd_weight_decay_pulls_to_zero() {
        let mut p = param(&[10.0]);
        let mut sgd = Sgd::with_momentum(0.1, 0.0, 0.1).unwrap();
        p.grad.fill(0.0);
        sgd.step(&mut [&mut p]).unwrap();
        assert!(p.value.data()[0] < 10.0);
    }

    #[test]
    fn per_element_lr_scaling_suppresses_update() {
        // The SteppingNet suppression mechanism: scaled elements move less.
        let mut p = param(&[1.0, 1.0]);
        p.grad.fill(1.0);
        p.set_lr_scale(Tensor::from_vec(Shape::of(&[2]), vec![1.0, 0.1]).unwrap());
        let mut sgd = Sgd::new(0.1).unwrap();
        sgd.step(&mut [&mut p]).unwrap();
        assert!((p.value.data()[0] - 0.9).abs() < 1e-6);
        assert!((p.value.data()[1] - 0.99).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimise f(w) = (w - 3)²
        let mut p = param(&[0.0]);
        let mut adam = Adam::new(0.1).unwrap();
        for _ in 0..500 {
            let w = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * (w - 3.0);
            adam.step(&mut [&mut p]).unwrap();
        }
        assert!((p.value.data()[0] - 3.0).abs() < 0.05);
    }

    #[test]
    fn hyper_parameter_validation() {
        assert!(Sgd::new(0.0).is_err());
        assert!(Sgd::new(f32::NAN).is_err());
        assert!(Sgd::with_momentum(0.1, 1.0, 0.0).is_err());
        assert!(Sgd::with_momentum(0.1, 0.5, -1.0).is_err());
        assert!(Adam::new(-0.1).is_err());
        let mut s = Sgd::new(0.1).unwrap();
        assert!(s.set_lr(0.2).is_ok());
        assert!(s.set_lr(0.0).is_err());
    }

    #[test]
    fn shape_change_is_detected() {
        let mut p = param(&[1.0, 2.0]);
        let mut sgd = Sgd::new(0.1).unwrap();
        sgd.step(&mut [&mut p]).unwrap();
        let mut q = param(&[1.0, 2.0, 3.0]);
        assert!(sgd.step(&mut [&mut q]).is_err());
    }
}
