//! Packed execution plans: bit-identity with the masked reference path and
//! cache-invalidation guarantees, exercised at the layer level.
//!
//! * `forward_packed` / `forward_step_packed` must equal the masked
//!   `forward` / `forward_rows` / `forward_channels` under `f32 ==` for
//!   arbitrary assignments, subnet indices, and batch sizes — including
//!   right after a weight update invalidated the cached plans.
//! * Every structural or weight mutator must advance the plan epoch, so a
//!   stale plan is never served.

use proptest::prelude::*;
use stepping_core::{
    Assignment, IncrementalExecutor, MaskedConv2d, MaskedLinear, SteppingNetBuilder,
};
use stepping_nn::optim::Sgd;
use stepping_tensor::{init, Shape};

const SUBNETS: usize = 3;
const IN_F: usize = 10;
const OUT_F: usize = 12;

/// Linear layer with arbitrary out/in assignments (targets may hit the
/// unused pool; legality is the masking rule, not a constructor invariant).
fn random_linear(seed: u64, out_moves: &[(u8, u8)], in_moves: &[(u8, u8)]) -> MaskedLinear {
    let mut l = MaskedLinear::new(IN_F, OUT_F, SUBNETS, &mut init::rng(seed));
    for &(n, t) in out_moves {
        l.move_out_neuron(n as usize % OUT_F, t as usize % (SUBNETS + 1))
            .unwrap();
    }
    let mut ia = Assignment::new(IN_F, SUBNETS);
    for &(n, t) in in_moves {
        ia.move_neuron(n as usize % IN_F, t as usize % (SUBNETS + 1))
            .unwrap();
    }
    l.set_in_assign(ia).unwrap();
    l
}

const IN_C: usize = 3;
const OUT_C: usize = 6;
const EXTENT: usize = 6; // 3x3 kernel, stride 1, padding 1 -> 6x6 out

fn random_conv(seed: u64, out_moves: &[(u8, u8)], in_moves: &[(u8, u8)]) -> MaskedConv2d {
    let mut c = MaskedConv2d::new(
        IN_C,
        OUT_C,
        3,
        1,
        1,
        EXTENT * EXTENT,
        SUBNETS,
        &mut init::rng(seed),
    );
    for &(n, t) in out_moves {
        c.move_out_neuron(n as usize % OUT_C, t as usize % (SUBNETS + 1))
            .unwrap();
    }
    let mut ia = Assignment::new(IN_C, SUBNETS);
    for &(n, t) in in_moves {
        ia.move_neuron(n as usize % IN_C, t as usize % (SUBNETS + 1))
            .unwrap();
    }
    c.set_in_assign(ia).unwrap();
    c
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn linear_packed_bit_identical_to_masked(
        out_moves in proptest::collection::vec((0u8..64, 0u8..8), 0..12),
        in_moves in proptest::collection::vec((0u8..64, 0u8..8), 0..12),
        seed in 0u64..1000,
        batch in 1usize..5,
    ) {
        let mut l = random_linear(seed, &out_moves, &in_moves);
        let x = init::uniform(
            Shape::of(&[batch, IN_F]), -2.0, 2.0, &mut init::rng(seed ^ 1),
        );
        for s in 0..SUBNETS {
            let masked = l.forward(&x, s, false).unwrap();
            let packed = l.forward_packed(&x, s).unwrap();
            prop_assert_eq!(&packed, &masked, "subnet {} full plan differs", s);
            // second call serves the cached plan — must still match
            let cached = l.forward_packed(&x, s).unwrap();
            prop_assert_eq!(&cached, &masked, "subnet {} cached plan differs", s);

            let rows = l.out_assign().members(s);
            if !rows.is_empty() {
                let reference = l.forward_rows(&x, &rows, s).unwrap();
                let stepped = l.forward_step_packed(&x, s).unwrap();
                prop_assert_eq!(&stepped, &reference, "subnet {} step plan differs", s);
            }
        }
    }

    #[test]
    fn linear_packed_matches_after_weight_update(
        out_moves in proptest::collection::vec((0u8..64, 0u8..8), 0..12),
        seed in 0u64..1000,
        delta in -1.0f32..1.0,
    ) {
        let mut l = random_linear(seed, &out_moves, &[]);
        let x = init::uniform(Shape::of(&[3, IN_F]), -1.0, 1.0, &mut init::rng(seed ^ 2));
        // compile and serve plans for every subnet
        for s in 0..SUBNETS {
            let _ = l.forward_packed(&x, s).unwrap();
            let _ = l.forward_step_packed(&x, s).unwrap();
        }
        let before = l.plan_epoch();
        for w in l.weight_mut().value.data_mut() {
            *w += delta;
        }
        prop_assert!(l.plan_epoch() != before, "weight_mut must advance the epoch");
        for s in 0..SUBNETS {
            let masked = l.forward(&x, s, false).unwrap();
            let packed = l.forward_packed(&x, s).unwrap();
            prop_assert_eq!(&packed, &masked, "stale full plan served for subnet {}", s);
            let rows = l.out_assign().members(s);
            if !rows.is_empty() {
                let reference = l.forward_rows(&x, &rows, s).unwrap();
                let stepped = l.forward_step_packed(&x, s).unwrap();
                prop_assert_eq!(&stepped, &reference, "stale step plan served for subnet {}", s);
            }
        }
    }

    #[test]
    fn conv_packed_bit_identical_to_masked(
        out_moves in proptest::collection::vec((0u8..64, 0u8..8), 0..8),
        in_moves in proptest::collection::vec((0u8..64, 0u8..8), 0..8),
        seed in 0u64..1000,
        batch in 1usize..4,
    ) {
        let mut c = random_conv(seed, &out_moves, &in_moves);
        let x = init::uniform(
            Shape::of(&[batch, IN_C, EXTENT, EXTENT]), -2.0, 2.0, &mut init::rng(seed ^ 3),
        );
        for s in 0..SUBNETS {
            let masked = c.forward(&x, s, false).unwrap();
            let packed = c.forward_packed(&x, s).unwrap();
            prop_assert_eq!(&packed, &masked, "subnet {} full plan differs", s);

            let chans = c.out_assign().members(s);
            if !chans.is_empty() {
                let reference = c.forward_channels(&x, &chans, s).unwrap();
                let stepped = c.forward_step_packed(&x, s).unwrap();
                prop_assert_eq!(&stepped, &reference, "subnet {} step plan differs", s);
            }
        }
    }

    #[test]
    fn conv_packed_matches_after_weight_update(
        out_moves in proptest::collection::vec((0u8..64, 0u8..8), 0..8),
        seed in 0u64..1000,
        delta in -1.0f32..1.0,
    ) {
        let mut c = random_conv(seed, &out_moves, &[]);
        let x = init::uniform(
            Shape::of(&[2, IN_C, EXTENT, EXTENT]), -1.0, 1.0, &mut init::rng(seed ^ 4),
        );
        for s in 0..SUBNETS {
            let _ = c.forward_packed(&x, s).unwrap();
        }
        let before = c.plan_epoch();
        for w in c.weight_mut().value.data_mut() {
            *w += delta;
        }
        prop_assert!(c.plan_epoch() != before, "weight_mut must advance the epoch");
        for s in 0..SUBNETS {
            let masked = c.forward(&x, s, false).unwrap();
            let packed = c.forward_packed(&x, s).unwrap();
            prop_assert_eq!(&packed, &masked, "stale full plan served for subnet {}", s);
        }
    }
}

#[test]
fn every_linear_mutator_advances_the_plan_epoch() {
    let mut l = random_linear(7, &[(3, 1), (5, 2)], &[(1, 1)]);
    let x = init::uniform(Shape::of(&[2, IN_F]), -1.0, 1.0, &mut init::rng(8));
    let _ = l.forward_packed(&x, 1).unwrap();

    let e0 = l.plan_epoch();
    l.weight_mut();
    let e1 = l.plan_epoch();
    assert_ne!(e0, e1, "weight_mut");

    l.params_mut();
    let e2 = l.plan_epoch();
    assert_ne!(e1, e2, "params_mut");

    l.move_out_neuron(0, 2).unwrap();
    let e3 = l.plan_epoch();
    assert_ne!(e2, e3, "move_out_neuron");

    l.set_in_assign(Assignment::new(IN_F, SUBNETS)).unwrap();
    let e4 = l.plan_epoch();
    assert_ne!(e3, e4, "set_in_assign");

    // prune with an enormous threshold zeroes weights -> must invalidate
    let pruned = l.prune(f32::INFINITY);
    assert!(pruned > 0, "test needs at least one pruned weight");
    let e5 = l.plan_epoch();
    assert_ne!(e4, e5, "prune");
}

#[test]
fn every_conv_mutator_advances_the_plan_epoch() {
    let mut c = random_conv(9, &[(2, 1)], &[]);
    let x = init::uniform(
        Shape::of(&[1, IN_C, EXTENT, EXTENT]),
        -1.0,
        1.0,
        &mut init::rng(10),
    );
    let _ = c.forward_packed(&x, 1).unwrap();

    let e0 = c.plan_epoch();
    c.weight_mut();
    let e1 = c.plan_epoch();
    assert_ne!(e0, e1, "weight_mut");

    c.params_mut();
    let e2 = c.plan_epoch();
    assert_ne!(e1, e2, "params_mut");

    c.move_out_neuron(0, 2).unwrap();
    let e3 = c.plan_epoch();
    assert_ne!(e2, e3, "move_out_neuron");

    c.set_in_assign(Assignment::new(IN_C, SUBNETS)).unwrap();
    let e4 = c.plan_epoch();
    assert_ne!(e3, e4, "set_in_assign");

    let pruned = c.prune(f32::INFINITY);
    assert!(pruned > 0, "test needs at least one pruned weight");
    let e5 = c.plan_epoch();
    assert_ne!(e4, e5, "prune");
}

#[test]
fn net_packed_forward_tracks_sgd_updates() {
    let mut net = SteppingNetBuilder::new(Shape::of(&[6]), 2, 3)
        .linear(9)
        .relu()
        .linear(7)
        .relu()
        .build(4)
        .unwrap();
    net.move_neuron(0, 2, 1).unwrap();
    net.move_neuron(2, 4, 1).unwrap();
    let x = init::uniform(Shape::of(&[3, 6]), -1.0, 1.0, &mut init::rng(11));
    let dy = init::uniform(Shape::of(&[3, 4]), 0.1, 1.0, &mut init::rng(12));

    let mut sgd = Sgd::new(0.05).unwrap();
    for step in 0..3 {
        // packed inference on warm plans for both subnets
        for s in 0..2 {
            let masked = net.clone().forward(&x, s, false).unwrap();
            let packed = net.forward_packed(&x, s).unwrap();
            assert_eq!(packed, masked, "step {step} subnet {s}");
        }
        // SGD update through params_for must invalidate stage + head plans
        net.zero_grad();
        let _ = net.forward(&x, 1, true).unwrap();
        net.backward(&dy).unwrap();
        sgd.step(&mut net.params_for(1).unwrap()).unwrap();
    }
}

/// Fused-pipeline oracle test: a net whose stage list exercises every
/// walker decision — relu/tanh epilogue fusion, the sigmoid
/// materialization fallback, and panel hand-off between masked linears —
/// must stay bit-identical to the masked `forward` across SGD updates, on
/// both the direct `forward_packed` path and the incremental expand path.
#[test]
fn fused_mlp_pipeline_tracks_sgd_updates() {
    let subnets = 3;
    let mut net = SteppingNetBuilder::new(Shape::of(&[8]), subnets, 5)
        .linear(12)
        .relu()
        .linear(10)
        .tanh()
        .linear(9)
        .sigmoid()
        .build(4)
        .unwrap();
    // scatter some neurons so subnet column lists are ragged
    net.move_neuron(0, 3, 1).unwrap();
    net.move_neuron(0, 7, 2).unwrap();
    net.move_neuron(2, 1, 1).unwrap();
    net.move_neuron(4, 2, 2).unwrap();
    let x = init::uniform(Shape::of(&[3, 8]), -1.0, 1.0, &mut init::rng(21));
    let dy = init::uniform(Shape::of(&[3, 4]), 0.1, 1.0, &mut init::rng(22));

    let mut sgd = Sgd::new(0.05).unwrap();
    for step in 0..3 {
        let mut masked = Vec::new();
        for s in 0..subnets {
            masked.push(net.clone().forward(&x, s, false).unwrap());
            let packed = net.forward_packed(&x, s).unwrap();
            assert_eq!(packed, masked[s], "step {step} subnet {s}: direct path");
        }
        {
            let mut exec = IncrementalExecutor::new(&mut net, 0.0);
            let first = exec.begin(&x).unwrap();
            assert_eq!(first.logits, masked[0], "step {step}: expand subnet 0");
            for (s, want) in masked.iter().enumerate().skip(1) {
                let inc = exec.expand().unwrap();
                assert_eq!(&inc.logits, want, "step {step}: expand subnet {s}");
            }
        }
        net.zero_grad();
        let _ = net.forward(&x, 1, true).unwrap();
        net.backward(&dy).unwrap();
        sgd.step(&mut net.params_for(1).unwrap()).unwrap();
    }
}

/// Same oracle discipline for a conv pipeline: im2col-fused conv stages,
/// pooling/flatten materialization points, and the packed expand path must
/// all track the masked reference bitwise while training mutates weights.
#[test]
fn fused_conv_pipeline_tracks_sgd_updates() {
    let subnets = 3;
    let mut net = SteppingNetBuilder::new(Shape::of(&[2, 8, 8]), subnets, 7)
        .conv(6, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .flatten()
        .linear(10)
        .relu()
        .build(4)
        .unwrap();
    net.move_neuron(0, 1, 1).unwrap();
    net.move_neuron(0, 4, 2).unwrap();
    net.move_neuron(4, 3, 1).unwrap();
    let x = init::uniform(Shape::of(&[2, 2, 8, 8]), -1.0, 1.0, &mut init::rng(23));
    let dy = init::uniform(Shape::of(&[2, 4]), 0.1, 1.0, &mut init::rng(24));

    let mut sgd = Sgd::new(0.05).unwrap();
    for step in 0..3 {
        let mut masked = Vec::new();
        for s in 0..subnets {
            masked.push(net.clone().forward(&x, s, false).unwrap());
            let packed = net.forward_packed(&x, s).unwrap();
            assert_eq!(packed, masked[s], "step {step} subnet {s}: direct path");
        }
        {
            let mut exec = IncrementalExecutor::new(&mut net, 0.0);
            let first = exec.begin(&x).unwrap();
            assert_eq!(first.logits, masked[0], "step {step}: expand subnet 0");
            for (s, want) in masked.iter().enumerate().skip(1) {
                let inc = exec.expand().unwrap();
                assert_eq!(&inc.logits, want, "step {step}: expand subnet {s}");
            }
        }
        net.zero_grad();
        let _ = net.forward(&x, 1, true).unwrap();
        net.backward(&dy).unwrap();
        sgd.step(&mut net.params_for(1).unwrap()).unwrap();
    }
}
