//! Pluggable invariant gate.
//!
//! `stepping-core` cannot depend on the analyzer crate (`stepping-verify`
//! depends on us), so the gate is a process-wide function pointer: the
//! analyzer registers itself via [`install_invariant_hook`], and —
//! **only** when the `verify-invariants` cargo feature is enabled —
//! [`construct()`](crate::construct()) re-checks the network after every
//! reallocation iteration and
//! [`load_state`](crate::checkpoint::load_state) re-checks every loaded
//! checkpoint. Without an installed hook the gate falls back to
//! [`SteppingNet::check_invariants`], which verifies the assignment chain
//! with no external dependencies.
//!
//! All checks are read-only: enabling the feature never changes numerical
//! results, it only turns silent structure corruption into an early
//! [`SteppingError`](crate::SteppingError).

use std::sync::OnceLock;

use crate::{Result, SteppingNet};

/// Signature of an installable invariant checker: read-only, `Err` means
/// the network's stepping structure is broken.
pub type InvariantHook = fn(&SteppingNet) -> Result<()>;

static HOOK: OnceLock<InvariantHook> = OnceLock::new();

/// Installs `hook` as the process-wide invariant checker.
///
/// The first installation wins for the lifetime of the process; returns
/// `false` (and keeps the existing hook) on later calls.
pub fn install_invariant_hook(hook: InvariantHook) -> bool {
    HOOK.set(hook).is_ok()
}

/// Runs the installed hook, or
/// [`SteppingNet::check_invariants`] when none is installed.
///
/// # Errors
///
/// Propagates whatever the active checker reports.
pub fn run_invariant_checks(net: &SteppingNet) -> Result<()> {
    match HOOK.get() {
        Some(hook) => hook(net),
        None => net.check_invariants(),
    }
}

/// Gate called from construction and checkpoint loading: runs
/// [`run_invariant_checks`] when the `verify-invariants` feature is
/// enabled.
///
/// # Errors
///
/// Propagates whatever the active checker reports.
#[cfg(feature = "verify-invariants")]
pub fn run_if_enabled(net: &SteppingNet) -> Result<()> {
    run_invariant_checks(net)
}

/// Gate called from construction and checkpoint loading: compiled to a
/// no-op because the `verify-invariants` feature is disabled.
///
/// # Errors
///
/// Never fails in this configuration.
#[cfg(not(feature = "verify-invariants"))]
pub fn run_if_enabled(_net: &SteppingNet) -> Result<()> {
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SteppingNetBuilder;
    use stepping_tensor::Shape;

    #[test]
    fn fallback_checker_accepts_fresh_net() {
        let net = SteppingNetBuilder::new(Shape::of(&[4]), 2, 0)
            .linear(6)
            .relu()
            .build(3)
            .unwrap();
        assert!(run_invariant_checks(&net).is_ok());
    }
}
