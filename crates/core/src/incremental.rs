//! Anytime inference with computational reuse — the deployment-side payoff
//! of the stepping structure (paper §I contribution 2: "intermediate results
//! of a subnet can directly be reused in subsequent larger subnets").
//!
//! [`IncrementalExecutor::begin`] runs the smallest subnet and caches every
//! stage's activations. When more computational resources become available,
//! [`IncrementalExecutor::expand`] steps to the next subnet by computing
//! **only the newly added neurons** (plus the next subnet's lightweight
//! head); cached values are spliced, never recomputed. The executor's outputs
//! are bit-identical to running the larger subnet from scratch — a property
//! the test suite asserts exhaustively.

use stepping_tensor::Tensor;

use crate::batch::{self, ActivationCache};
use crate::telemetry::{self, Value};
use crate::{Result, SteppingError, SteppingNet};

/// Outcome of one executor step ([`IncrementalExecutor::begin`] or
/// [`IncrementalExecutor::expand`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpandStep {
    /// The subnet now active.
    pub subnet: usize,
    /// Class logits of that subnet's head.
    pub logits: Tensor,
    /// MAC operations executed by this step alone (new neurons + head).
    pub step_macs: u64,
    /// Total MAC operations executed since `begin`.
    pub cumulative_macs: u64,
}

/// Stateful anytime-inference driver over a [`SteppingNet`].
///
/// # Example
///
/// ```
/// use stepping_core::{IncrementalExecutor, SteppingNetBuilder};
/// use stepping_tensor::{Shape, Tensor};
///
/// let mut net = SteppingNetBuilder::new(Shape::of(&[4]), 2, 0)
///     .linear(6).relu().build(3)?;
/// net.move_neuron(0, 5, 1)?; // neuron 5 only in subnet 1
/// let mut exec = IncrementalExecutor::new(&mut net, 1e-5);
/// let first = exec.begin(&Tensor::zeros(Shape::of(&[1, 4])))?;
/// let second = exec.expand()?; // reuses subnet-0 activations
/// assert!(second.step_macs < first.step_macs + second.step_macs);
/// # Ok::<(), stepping_core::SteppingError>(())
/// ```
#[derive(Debug)]
pub struct IncrementalExecutor<'a> {
    net: &'a mut SteppingNet,
    prune_threshold: f32,
    cache: ActivationCache,
}

impl<'a> IncrementalExecutor<'a> {
    /// Creates an executor over `net`; `prune_threshold` is the magnitude
    /// threshold used for MAC accounting.
    pub fn new(net: &'a mut SteppingNet, prune_threshold: f32) -> Self {
        IncrementalExecutor {
            net,
            prune_threshold,
            cache: ActivationCache::new(),
        }
    }

    /// The subnet most recently executed, if any.
    pub fn current_subnet(&self) -> Option<usize> {
        self.cache.current_subnet()
    }

    /// Total MACs executed since the last `begin`.
    pub fn cumulative_macs(&self) -> u64 {
        self.cache.cumulative_macs()
    }

    /// The per-request activation cache (e.g. to persist across a serving
    /// session and upgrade later via
    /// [`BatchExecutor`](crate::batch::BatchExecutor)).
    pub fn cache(&self) -> &ActivationCache {
        &self.cache
    }

    /// Consumes the executor, releasing its cache for external storage.
    pub fn into_cache(self) -> ActivationCache {
        self.cache
    }

    /// Runs subnet 0 on `input` (inference mode), caching all activations.
    ///
    /// # Errors
    ///
    /// Propagates forward errors.
    pub fn begin(&mut self, input: &Tensor) -> Result<ExpandStep> {
        self.begin_at(input, 0)
    }

    /// Runs subnet `subnet` directly on `input` (inference mode), caching
    /// all activations — the client skips the smaller subnets entirely and
    /// pays `macs(subnet)` up front; later [`expand`](Self::expand) calls
    /// still reuse the caches incrementally.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::SubnetOutOfRange`] and propagates forward
    /// errors.
    pub fn begin_at(&mut self, input: &Tensor, subnet: usize) -> Result<ExpandStep> {
        if subnet >= self.net.subnet_count() {
            return Err(SteppingError::SubnetOutOfRange {
                subnet,
                count: self.net.subnet_count(),
            });
        }
        let span = telemetry::span("inference", "exec.begin");
        let (acts, logits) = batch::full_pass(self.net, input, subnet)?;
        let step_macs = self.net.macs(subnet, self.prune_threshold);
        let cached_stages = acts.len() as u64 - 1;
        self.cache = ActivationCache {
            acts,
            current: Some(subnet),
            computed: subnet,
            cumulative_macs: step_macs,
        };
        span.end(&[
            ("subnet", Value::U64(subnet as u64)),
            ("step_macs", Value::U64(step_macs)),
            ("cached_stages", Value::U64(cached_stages)),
        ]);
        Ok(ExpandStep {
            subnet,
            logits,
            step_macs,
            cumulative_macs: step_macs,
        })
    }

    /// Steps to the next larger subnet, computing only its new neurons and
    /// head. Cached activations of smaller subnets are reused verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::ExecutorState`] before `begin` or past the
    /// largest subnet, and propagates forward errors.
    pub fn expand(&mut self) -> Result<ExpandStep> {
        let cur = self
            .cache
            .current
            .ok_or_else(|| SteppingError::ExecutorState("expand called before begin".into()))?;
        let k = cur + 1;
        if k >= self.net.subnet_count() {
            return Err(SteppingError::ExecutorState(format!(
                "already at largest subnet {cur}"
            )));
        }
        let span = telemetry::span("inference", "exec.expand");
        let head_only = k <= self.cache.computed;
        let (logits, step_macs) = if head_only {
            // The caches already hold every neuron of subnet `k` (we
            // contracted earlier) — only the head needs to run.
            let features = batch::last_act(&self.cache.acts)?.clone();
            let logits = self.net.head_forward_packed(&features, k)?;
            (logits, self.net.head_macs(k))
        } else {
            batch::expand_pass(self.net, &mut self.cache.acts, k, self.prune_threshold)?
        };
        self.cache.current = Some(k);
        if !head_only {
            self.cache.computed = k;
        }
        self.cache.cumulative_macs += step_macs;
        if span.is_active() {
            // Reuse ratio: fraction of the from-scratch subnet-k cost that
            // cached activations made unnecessary.
            let scratch = self.net.macs(k, self.prune_threshold);
            span.end(&[
                ("subnet", Value::U64(k as u64)),
                ("step_macs", Value::U64(step_macs)),
                ("cumulative_macs", Value::U64(self.cache.cumulative_macs)),
                ("head_only", Value::Bool(head_only)),
                (
                    "reuse_ratio",
                    Value::F64(1.0 - step_macs as f64 / scratch.max(1) as f64),
                ),
            ]);
        }
        Ok(ExpandStep {
            subnet: k,
            logits,
            step_macs,
            cumulative_macs: self.cache.cumulative_macs,
        })
    }

    /// Steps down to the next *smaller* subnet when resources shrink. The
    /// larger subnet's cached results are reused (paper §II: "the smaller
    /// subnet can also reuse the intermediate results of the previous larger
    /// subnet"); only the smaller subnet's head runs, and a later re-expansion
    /// back up to the previously computed level costs only heads too.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::ExecutorState`] before `begin` or at
    /// subnet 0.
    pub fn contract(&mut self) -> Result<ExpandStep> {
        let cur = self
            .cache
            .current
            .ok_or_else(|| SteppingError::ExecutorState("contract called before begin".into()))?;
        if cur == 0 {
            return Err(SteppingError::ExecutorState(
                "already at smallest subnet".into(),
            ));
        }
        let span = telemetry::span("inference", "exec.contract");
        let k = cur - 1;
        let features = batch::last_act(&self.cache.acts)?.clone();
        let logits = self.net.head_forward_packed(&features, k)?;
        let step_macs = self.net.head_macs(k);
        self.cache.current = Some(k);
        self.cache.cumulative_macs += step_macs;
        span.end(&[
            ("subnet", Value::U64(k as u64)),
            ("step_macs", Value::U64(step_macs)),
            ("cumulative_macs", Value::U64(self.cache.cumulative_macs)),
            ("computed_level", Value::U64(self.cache.computed as u64)),
        ]);
        Ok(ExpandStep {
            subnet: k,
            logits,
            step_macs,
            cumulative_macs: self.cache.cumulative_macs,
        })
    }

    /// Runs `begin` and then `expand`s until `subnet`, returning every step.
    ///
    /// # Errors
    ///
    /// Propagates `begin`/`expand` errors.
    pub fn run_to(&mut self, input: &Tensor, subnet: usize) -> Result<Vec<ExpandStep>> {
        if subnet >= self.net.subnet_count() {
            return Err(SteppingError::SubnetOutOfRange {
                subnet,
                count: self.net.subnet_count(),
            });
        }
        let mut steps = vec![self.begin(input)?];
        while self.cache.current != Some(subnet) {
            steps.push(self.expand()?);
        }
        Ok(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SteppingNetBuilder;
    use stepping_tensor::{init, Shape};

    fn mlp() -> SteppingNet {
        let mut net = SteppingNetBuilder::new(Shape::of(&[6]), 3, 1)
            .linear(10)
            .relu()
            .linear(8)
            .relu()
            .build(4)
            .unwrap();
        // spread neurons across subnets
        net.move_neurons(&[(0, 1, 1), (0, 2, 2), (0, 3, 1), (2, 0, 1), (2, 5, 2)])
            .unwrap();
        net
    }

    fn cnn() -> SteppingNet {
        let mut net = SteppingNetBuilder::new(Shape::of(&[2, 8, 8]), 3, 2)
            .conv(5, 3, 1, 1)
            .batch_norm()
            .relu()
            .max_pool(2, 2)
            .flatten()
            .linear(9)
            .relu()
            .build(3)
            .unwrap();
        net.move_neurons(&[(0, 0, 1), (0, 4, 2), (5, 2, 1), (5, 7, 2)])
            .unwrap();
        net
    }

    #[test]
    fn incremental_equals_from_scratch_mlp() {
        let mut net = mlp();
        let x = init::uniform(Shape::of(&[3, 6]), -1.0, 1.0, &mut init::rng(5));
        // From-scratch references first (separate clone so caches don't mix).
        let mut scratch = net.clone();
        let refs: Vec<Tensor> = (0..3)
            .map(|k| scratch.forward(&x, k, false).unwrap())
            .collect();
        let mut exec = IncrementalExecutor::new(&mut net, 1e-5);
        let s0 = exec.begin(&x).unwrap();
        assert_eq!(s0.logits, refs[0]);
        let s1 = exec.expand().unwrap();
        assert_eq!(s1.logits, refs[1], "subnet 1 logits differ");
        let s2 = exec.expand().unwrap();
        assert_eq!(s2.logits, refs[2], "subnet 2 logits differ");
    }

    #[test]
    fn incremental_equals_from_scratch_cnn_with_batchnorm() {
        let mut net = cnn();
        // give batch norm non-trivial running stats
        let warm = init::uniform(Shape::of(&[4, 2, 8, 8]), -1.0, 1.0, &mut init::rng(6));
        for _ in 0..3 {
            net.forward(&warm, 2, true).unwrap();
        }
        let x = init::uniform(Shape::of(&[2, 2, 8, 8]), -1.0, 1.0, &mut init::rng(7));
        let mut scratch = net.clone();
        let refs: Vec<Tensor> = (0..3)
            .map(|k| scratch.forward(&x, k, false).unwrap())
            .collect();
        let mut exec = IncrementalExecutor::new(&mut net, 1e-5);
        let steps = exec.run_to(&x, 2).unwrap();
        for (k, step) in steps.iter().enumerate() {
            assert_eq!(step.logits, refs[k], "subnet {k} logits differ");
        }
    }

    #[test]
    fn expand_costs_less_than_from_scratch() {
        let mut net = mlp();
        let from_scratch: Vec<u64> = (0..3).map(|k| net.macs(k, 1e-5)).collect();
        let head_total: u64 = (0..3).map(|k| net.head_macs(k)).sum();
        let stage_total = from_scratch[2] - net.head_macs(2);
        let x = init::uniform(Shape::of(&[1, 6]), -1.0, 1.0, &mut init::rng(8));
        let mut exec = IncrementalExecutor::new(&mut net, 1e-5);
        exec.begin(&x).unwrap();
        let s1 = exec.expand().unwrap();
        assert!(
            s1.step_macs < from_scratch[1],
            "expansion cost {} should be below from-scratch {}",
            s1.step_macs,
            from_scratch[1]
        );
        let s2 = exec.expand().unwrap();
        assert!(s2.step_macs < from_scratch[2]);
        // cumulative = from-scratch cost of the largest subnet ± head overlap:
        // we paid heads 0, 1, 2 but reused all stage MACs exactly once.
        assert_eq!(exec.cumulative_macs(), stage_total + head_total);
    }

    #[test]
    fn executor_state_errors() {
        let mut net = mlp();
        let mut exec = IncrementalExecutor::new(&mut net, 1e-5);
        assert!(exec.expand().is_err());
        let x = init::uniform(Shape::of(&[1, 6]), -1.0, 1.0, &mut init::rng(9));
        exec.begin(&x).unwrap();
        exec.expand().unwrap();
        exec.expand().unwrap();
        assert!(
            exec.expand().is_err(),
            "expanding past the largest subnet must fail"
        );
        assert!(exec.run_to(&x, 7).is_err());
    }

    #[test]
    fn begin_resets_state() {
        let mut net = mlp();
        let x = init::uniform(Shape::of(&[1, 6]), -1.0, 1.0, &mut init::rng(10));
        let mut exec = IncrementalExecutor::new(&mut net, 1e-5);
        exec.begin(&x).unwrap();
        exec.expand().unwrap();
        let again = exec.begin(&x).unwrap();
        assert_eq!(again.subnet, 0);
        assert_eq!(exec.current_subnet(), Some(0));
        assert_eq!(exec.cumulative_macs(), again.step_macs);
    }

    #[test]
    fn contract_reuses_larger_subnet_results() {
        let mut net = mlp();
        let head1_macs = net.head_macs(1);
        let head2_macs = net.head_macs(2);
        let x = init::uniform(Shape::of(&[2, 6]), -1.0, 1.0, &mut init::rng(11));
        let mut scratch = net.clone();
        let refs: Vec<Tensor> = (0..3)
            .map(|k| scratch.forward(&x, k, false).unwrap())
            .collect();
        let mut exec = IncrementalExecutor::new(&mut net, 1e-5);
        exec.begin(&x).unwrap();
        exec.expand().unwrap();
        exec.expand().unwrap();
        // shrink: subnet 1's prediction for the head price only
        let down = exec.contract().unwrap();
        assert_eq!(down.subnet, 1);
        assert_eq!(down.logits, refs[1]);
        assert_eq!(
            down.step_macs, head1_macs,
            "contraction should cost only the head"
        );
        // re-expansion to the already-computed subnet 2 is also head-only
        let up = exec.expand().unwrap();
        assert_eq!(up.subnet, 2);
        assert_eq!(up.logits, refs[2]);
        assert_eq!(
            up.step_macs, head2_macs,
            "re-expansion should cost only the head"
        );
        // contract twice more hits the floor
        exec.contract().unwrap();
        exec.contract().unwrap();
        assert!(exec.contract().is_err());
    }

    #[test]
    fn contract_before_begin_errors() {
        let mut net = mlp();
        let mut exec = IncrementalExecutor::new(&mut net, 1e-5);
        assert!(exec.contract().is_err());
    }

    #[test]
    fn splice_helpers_validate_shapes() {
        use crate::batch::{splice_channels, splice_columns};
        let mut t = Tensor::zeros(Shape::of(&[2, 3]));
        let fresh = Tensor::ones(Shape::of(&[2, 1]));
        splice_columns(&mut t, &fresh, &[1]).unwrap();
        assert_eq!(t.data(), &[0., 1., 0., 0., 1., 0.]);
        assert!(splice_columns(&mut t, &fresh, &[0, 1]).is_err());
        let mut img = Tensor::zeros(Shape::of(&[1, 2, 1, 2]));
        let fresh = Tensor::ones(Shape::of(&[1, 1, 1, 2]));
        splice_channels(&mut img, &fresh, &[1]).unwrap();
        assert_eq!(img.data(), &[0., 0., 1., 1.]);
        assert!(splice_channels(&mut img, &fresh, &[0, 1]).is_err());
    }
}
