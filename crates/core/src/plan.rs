//! Compiled subnet execution plans: packed active-neuron panels.
//!
//! The masked reference path (`MaskedLinear::forward`,
//! `MaskedConv2d::forward`) multiplies full-width matrices in which every
//! inactive or illegal entry is zero, so a subnet at a 25% MAC budget still
//! pays >100% of the dense FLOPs plus an `O(out × in)` re-masking
//! allocation per call. A *plan* compiles the surviving structure of one
//! `(layer, subnet)` pair once — the active output neurons, the active
//! input neurons, and a contiguous weight panel over exactly those — so
//! inference runs a small dense GEMM and scatters the result back to the
//! full-width activation (inactive outputs stay exactly zero).
//!
//! ## Bit-identity
//!
//! Panels keep surviving terms in ascending index order and run the blocked
//! NT microkernel (`stepping_tensor::microkernel`), whose per-element
//! accumulation order is identical to the reference `nt_kernel`, and
//! per-row entries that are *legal at the subnet but illegal for that
//! particular row* (`assign(in) > assign(out)`) are stored as `0.0`,
//! mirroring `effective_weight`. The only dropped terms are products with
//! an exact-zero activation and an exact-zero masked weight, which can
//! never change a nonzero accumulator. Packed results therefore compare
//! equal (`f32 ==`) to masked results; the property suites assert this.
//!
//! ## Invalidation
//!
//! Plans are keyed by a per-layer *epoch* counter. Every mutation that can
//! change weights or assignments bumps the epoch and drops compiled plans:
//! handing out `&mut Param` (optimizer steps, checkpoint restore), pruning,
//! neuron moves, and in-assignment replacement. Handing out a mutable
//! borrow invalidates conservatively — a caller that only reads pays one
//! recompile, while a missed invalidation would silently serve stale
//! weights, which the tests in `crates/core/tests/packed_plans.rs` guard
//! against.

use std::sync::{Arc, OnceLock};

use stepping_metrics::{start_timer, LogHistogram, MetricsRegistry, PhaseTimer, ShardedCounter};
use stepping_tensor::microkernel::PackedB;

use crate::telemetry::{self, Value};

/// Always-on plan-cache metrics in the process-wide registry, distinct from
/// the offline `obs` telemetry below: these are live production counters
/// (`plan.compile`, `plan.cache_hit`, `plan.invalidate`) plus the compile
/// phase histogram (`plan.compile_ns`) and the packed execution phase
/// histograms (`plan.gemm_ns`, `plan.pack_ns`), named by the
/// [`crate::events::metric`] table.
struct PlanMetrics {
    compile: Arc<ShardedCounter>,
    compile_ns: Arc<LogHistogram>,
    cache_hit: Arc<ShardedCounter>,
    invalidate: Arc<ShardedCounter>,
    gemm_ns: Arc<LogHistogram>,
    pack_ns: Arc<LogHistogram>,
}

fn plan_metrics() -> &'static PlanMetrics {
    static METRICS: OnceLock<PlanMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = MetricsRegistry::global();
        registry.set_validator(crate::events::is_metric);
        PlanMetrics {
            compile: registry.register_counter(crate::events::metric::PLAN_COMPILE),
            compile_ns: registry.register_histogram(crate::events::metric::PLAN_COMPILE_NS),
            cache_hit: registry.register_counter(crate::events::metric::PLAN_CACHE_HIT),
            invalidate: registry.register_counter(crate::events::metric::PLAN_INVALIDATE),
            gemm_ns: registry.register_histogram(crate::events::metric::PLAN_GEMM_NS),
            pack_ns: registry.register_histogram(crate::events::metric::PLAN_PACK_NS),
        }
    })
}

/// Starts the `plan.compile_ns` phase timer; bind it across an `ensure_*`
/// compile so the drop (or an explicit `stop`) records the compile latency.
pub(crate) fn compile_timer() -> PhaseTimer {
    start_timer(&plan_metrics().compile_ns)
}

/// Starts the `plan.gemm_ns` phase timer; bind it across the blocked GEMM
/// of one packed pass.
pub(crate) fn gemm_timer() -> PhaseTimer {
    start_timer(&plan_metrics().gemm_ns)
}

/// Starts the `plan.pack_ns` phase timer; bind it across the gather/im2col
/// packing of one packed pass.
pub(crate) fn pack_timer() -> PhaseTimer {
    start_timer(&plan_metrics().pack_ns)
}

/// Activation fused into a packed GEMM epilogue. Only zero-preserving
/// activations are fusable: the packed scatter leaves inactive entries at
/// exactly `0.0`, and the masked reference applies the activation to the
/// full-width tensor, so fusion is bit-identical only when `act(0) == 0`
/// (`relu`, `tanh` — not `sigmoid`, whose `0.5` at inactive entries forces
/// full-width materialisation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum FusedAct {
    /// Bias only.
    #[default]
    None,
    /// `(v + b).max(0.0)` — the exact expression `Relu` applies.
    Relu,
    /// `(v + b).tanh()` — the exact expression `Tanh` applies.
    Tanh,
}

impl FusedAct {
    /// The microkernel epilogue for this activation over `bias`.
    pub fn epilogue<'a>(self, bias: &'a [f32]) -> stepping_tensor::microkernel::Epilogue<'a> {
        use stepping_tensor::microkernel::Epilogue;
        match self {
            FusedAct::None => Epilogue::Bias(bias),
            FusedAct::Relu => Epilogue::BiasRelu(bias),
            FusedAct::Tanh => Epilogue::BiasTanh(bias),
        }
    }
}

/// Packed panel for one `(masked-linear layer, subnet)` pair.
#[derive(Debug, Clone)]
pub(crate) struct LinearPlan {
    /// Output neuron indices covered by this plan, ascending. For a *full*
    /// plan these are the neurons active at the subnet; for a *step* plan
    /// they are the neurons assigned exactly to the subnet.
    pub out_idx: Vec<usize>,
    /// Input indices active at the subnet, ascending.
    pub in_idx: Vec<usize>,
    /// Weight panel `[out_idx.len(), in_idx.len()]` pre-packed into the
    /// blocked microkernel's tile-major layout (NT orientation: packed from
    /// row-major `[rows, depth]`); entries illegal for their row
    /// (`assign(in) > assign(out)`) are `0.0`.
    pub weight: PackedB,
    /// Bias gathered over `out_idx`.
    pub bias: Vec<f32>,
}

/// Packed panel for one `(masked-conv layer, subnet)` pair.
#[derive(Debug, Clone)]
pub(crate) struct ConvPlan {
    /// Output channel indices covered by this plan, ascending (see
    /// [`LinearPlan::out_idx`] for full vs. step semantics).
    pub oc_idx: Vec<usize>,
    /// Input channel indices active at the subnet, ascending.
    pub ic_idx: Vec<usize>,
    /// Weight panel `[oc_idx.len(), ic_idx.len() * kh * kw]` pre-packed
    /// into the microkernel's tile-major layout (NT orientation); channel
    /// blocks illegal for their row are `0.0`.
    pub weight: PackedB,
    /// Bias gathered over `oc_idx`.
    pub bias: Vec<f32>,
}

/// Packed head panel: the classifier head of one subnet restricted to the
/// features active at that subnet.
#[derive(Debug, Clone)]
pub(crate) struct HeadPlan {
    /// Feature indices active at the subnet, ascending.
    pub feat_idx: Vec<usize>,
    /// Weight panel `[classes, feat_idx.len()]` pre-packed into the
    /// microkernel's tile-major layout (NT orientation).
    pub weight: PackedB,
}

/// Per-layer cache of compiled plans, keyed by a weight/assignment epoch.
///
/// `full` plans cover every neuron active at a subnet (direct execution);
/// `step` plans cover only the neurons assigned exactly to a subnet (the
/// incremental expand path). Both are dropped — and the epoch advances —
/// on [`PlanSet::invalidate`]; a surviving entry is additionally epoch-
/// checked on read so a stale plan can never be served.
#[derive(Debug, Clone)]
pub(crate) struct PlanSet<P> {
    epoch: u64,
    full: Vec<Option<(u64, P)>>,
    step: Vec<Option<(u64, P)>>,
}

impl<P> Default for PlanSet<P> {
    fn default() -> Self {
        PlanSet {
            epoch: 0,
            full: Vec::new(),
            step: Vec::new(),
        }
    }
}

impl<P> PlanSet<P> {
    /// Current weight/assignment epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the epoch and drops every compiled plan. `kind` labels the
    /// owning layer in the `plan.invalidate` telemetry event (emitted only
    /// when plans were actually dropped, so construction-time churn on
    /// never-executed layers stays silent).
    pub fn invalidate(&mut self, kind: &'static str) {
        self.epoch = self.epoch.wrapping_add(1);
        let had = self.full.iter().any(Option::is_some) || self.step.iter().any(Option::is_some);
        if had {
            self.full.clear();
            self.step.clear();
            plan_metrics().invalidate.inc();
            telemetry::counter("plan", "plan.invalidate", 1, &[("layer", Value::Str(kind))]);
        }
    }

    /// The compiled full plan for `subnet`, if current.
    pub fn full(&self, subnet: usize) -> Option<&P> {
        Self::get(&self.full, subnet, self.epoch)
    }

    /// The compiled step plan for `subnet`, if current.
    pub fn step(&self, subnet: usize) -> Option<&P> {
        Self::get(&self.step, subnet, self.epoch)
    }

    /// Stores the full plan for `subnet` at the current epoch.
    pub fn put_full(&mut self, subnet: usize, plan: P) {
        Self::put(&mut self.full, subnet, self.epoch, plan);
    }

    /// Stores the step plan for `subnet` at the current epoch.
    pub fn put_step(&mut self, subnet: usize, plan: P) {
        Self::put(&mut self.step, subnet, self.epoch, plan);
    }

    fn get(slots: &[Option<(u64, P)>], subnet: usize, epoch: u64) -> Option<&P> {
        match slots.get(subnet).and_then(Option::as_ref) {
            Some((e, p)) if *e == epoch => Some(p),
            _ => None,
        }
    }

    fn put(slots: &mut Vec<Option<(u64, P)>>, subnet: usize, epoch: u64, plan: P) {
        if slots.len() <= subnet {
            slots.resize_with(subnet + 1, || None);
        }
        slots[subnet] = Some((epoch, plan));
    }
}

/// Typed error for a plan slot that is empty right after an `ensure_*`
/// compile — impossible unless the cache was invalidated mid-call, but the
/// packed paths surface it as an error instead of panicking (L4 panic
/// discipline).
pub(crate) fn missing(kind: &'static str) -> crate::SteppingError {
    crate::SteppingError::ExecutorState(format!("{kind} plan missing immediately after compile"))
}

/// Emits the `plan.compile` telemetry point for a freshly compiled plan.
pub(crate) fn note_compile(kind: &'static str, subnet: usize, rows: usize, cols: usize) {
    plan_metrics().compile.inc();
    telemetry::point(
        "plan",
        "plan.compile",
        &[
            ("layer", Value::Str(kind)),
            ("subnet", Value::U64(subnet as u64)),
            ("rows", Value::U64(rows as u64)),
            ("cols", Value::U64(cols as u64)),
        ],
    );
}

/// Emits the `plan.cache_hit` telemetry counter.
pub(crate) fn note_hit(kind: &'static str, subnet: usize) {
    plan_metrics().cache_hit.inc();
    telemetry::counter(
        "plan",
        "plan.cache_hit",
        1,
        &[
            ("layer", Value::Str(kind)),
            ("subnet", Value::U64(subnet as u64)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_survive_until_invalidated() {
        let mut set: PlanSet<u32> = PlanSet::default();
        assert_eq!(set.epoch(), 0);
        assert!(set.full(1).is_none());
        set.put_full(1, 42);
        set.put_step(0, 7);
        assert_eq!(set.full(1), Some(&42));
        assert_eq!(set.step(0), Some(&7));
        set.invalidate("test");
        assert_eq!(set.epoch(), 1);
        assert!(set.full(1).is_none());
        assert!(set.step(0).is_none());
    }

    #[test]
    fn stale_epoch_entries_are_never_served() {
        // Even if a slot survived a clear (belt and braces), the stored
        // epoch must match the current one.
        let mut set: PlanSet<u32> = PlanSet::default();
        set.put_full(0, 1);
        set.epoch = set.epoch.wrapping_add(1); // bump without clearing
        assert!(set.full(0).is_none());
    }
}
