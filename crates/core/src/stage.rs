use stepping_nn::{
    AvgPool2d, BatchNorm1d, BatchNorm2d, Dropout, Flatten, Layer, MaxPool2d, Param, Relu, Sigmoid,
    Tanh,
};
use stepping_tensor::Tensor;

use crate::{Assignment, MaskedConv2d, MaskedLinear, Result};

/// A subnet-agnostic layer inside a SteppingNet (activation, pooling,
/// normalisation, flatten, dropout). These layers never mix neurons across
/// channels/features, so they preserve the incremental property untouched.
#[derive(Debug, Clone)]
pub enum FixedStage {
    /// ReLU activation.
    Relu(Relu),
    /// Hyperbolic-tangent activation.
    Tanh(Tanh),
    /// Logistic-sigmoid activation.
    Sigmoid(Sigmoid),
    /// Max pooling.
    MaxPool(MaxPool2d),
    /// Average pooling.
    AvgPool(AvgPool2d),
    /// Batch norm over `[n, features]`. `assign` mirrors the upstream
    /// feature assignment so running statistics only update for features
    /// active in the trained subnet (inactive features carry masked zeros).
    BatchNorm1d {
        /// The wrapped layer.
        layer: BatchNorm1d,
        /// Upstream feature assignment (synced by the network).
        assign: Option<Assignment>,
    },
    /// Batch norm over NCHW (per channel — identical statistics in every
    /// subnet containing the channel, so no per-subnet copies are needed;
    /// this is the property the any-width network shares, paper §II).
    /// `assign` mirrors the upstream channel assignment, as in
    /// [`FixedStage::BatchNorm1d`].
    BatchNorm2d {
        /// The wrapped layer.
        layer: BatchNorm2d,
        /// Upstream channel assignment (synced by the network).
        assign: Option<Assignment>,
    },
    /// Flatten `[n, c, h, w] → [n, c·h·w]`; `factor` is `h·w`, used to expand
    /// channel assignments into feature assignments.
    Flatten {
        /// The wrapped layer.
        layer: Flatten,
        /// Spatial positions per channel at this point of the network.
        factor: usize,
    },
    /// Inverted dropout.
    Dropout(Dropout),
}

impl FixedStage {
    fn layer_mut(&mut self) -> &mut dyn Layer {
        match self {
            FixedStage::Relu(l) => l,
            FixedStage::Tanh(l) => l,
            FixedStage::Sigmoid(l) => l,
            FixedStage::MaxPool(l) => l,
            FixedStage::AvgPool(l) => l,
            FixedStage::BatchNorm1d { layer, .. } => layer,
            FixedStage::BatchNorm2d { layer, .. } => layer,
            FixedStage::Flatten { layer, .. } => layer,
            FixedStage::Dropout(l) => l,
        }
    }

    /// Human-readable kind.
    pub fn name(&self) -> &'static str {
        match self {
            FixedStage::Relu(_) => "Relu",
            FixedStage::Tanh(_) => "Tanh",
            FixedStage::Sigmoid(_) => "Sigmoid",
            FixedStage::MaxPool(_) => "MaxPool2d",
            FixedStage::AvgPool(_) => "AvgPool2d",
            FixedStage::BatchNorm1d { .. } => "BatchNorm1d",
            FixedStage::BatchNorm2d { .. } => "BatchNorm2d",
            FixedStage::Flatten { .. } => "Flatten",
            FixedStage::Dropout(_) => "Dropout",
        }
    }
}

/// One stage of a SteppingNet: a masked (steppable) layer or a fixed layer.
#[derive(Debug, Clone)]
pub enum Stage {
    /// Masked fully-connected layer (steppable output neurons).
    Linear(MaskedLinear),
    /// Masked convolution (steppable filters).
    Conv(MaskedConv2d),
    /// Subnet-agnostic layer.
    Fixed(FixedStage),
}

impl Stage {
    /// Runs the stage forward for `subnet`.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn forward(&mut self, x: &Tensor, subnet: usize, train: bool) -> Result<Tensor> {
        match self {
            Stage::Linear(l) => l.forward(x, subnet, train),
            Stage::Conv(c) => c.forward(x, subnet, train),
            Stage::Fixed(f) => {
                // Batch-norm running statistics must ignore channels that
                // are inactive (masked to zero) in the subnet being trained.
                if train {
                    match f {
                        FixedStage::BatchNorm1d {
                            layer,
                            assign: Some(a),
                        } => {
                            layer.set_stat_mask(Some(
                                (0..a.len()).map(|i| a.is_active(i, subnet)).collect(),
                            ));
                        }
                        FixedStage::BatchNorm2d {
                            layer,
                            assign: Some(a),
                        } => {
                            layer.set_stat_mask(Some(
                                (0..a.len()).map(|i| a.is_active(i, subnet)).collect(),
                            ));
                        }
                        _ => {}
                    }
                }
                Ok(f.layer_mut().forward(x, train)?)
            }
        }
    }

    /// Runs the stage forward for `subnet` on the packed inference path:
    /// masked stages execute their compiled plan
    /// ([`MaskedLinear::forward_packed`] /
    /// [`MaskedConv2d::forward_packed`]), fixed stages run a plain
    /// inference forward. Results equal [`Stage::forward`] with
    /// `train == false` under `f32 ==` (see [`crate::plan`]).
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn forward_packed(&mut self, x: &Tensor, subnet: usize) -> Result<Tensor> {
        match self {
            Stage::Linear(l) => l.forward_packed(x, subnet),
            Stage::Conv(c) => c.forward_packed(x, subnet),
            Stage::Fixed(f) => Ok(f.layer_mut().forward(x, false)?),
        }
    }

    /// Training-mode forward that routes masked linear stages through their
    /// compiled packed panels ([`MaskedLinear::forward_train_packed`]) while
    /// still populating the backward caches. Conv and fixed stages fall back
    /// to [`Stage::forward`] — a packed conv pass would not produce the
    /// `im2col` buffer its backward needs. Results equal [`Stage::forward`]
    /// under `f32 ==` (the plan bit-identity guarantee), so gradients are
    /// bit-unchanged.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn forward_train_packed(&mut self, x: &Tensor, subnet: usize) -> Result<Tensor> {
        match self {
            Stage::Linear(l) => l.forward_train_packed(x, subnet),
            _ => self.forward(x, subnet, true),
        }
    }

    /// Whether train-mode forwards of this stage are row-independent and
    /// free of cross-batch state, i.e. safe to run on sharded sub-batches:
    /// batch-norm (batch statistics) and dropout (an RNG stream) are not.
    ///
    /// Every variant is matched explicitly — no wildcard, no negated
    /// `matches!` — so adding a stage kind without deciding its shard
    /// safety is a compile error, and the `stepping-lint` L2 rule
    /// additionally requires each variant name to appear here. A silent
    /// `true` default would let a new stateful stage break the
    /// thread-count-invariance guarantee of `docs/PARALLELISM.md`.
    pub fn shard_safe(&self) -> bool {
        match self {
            Stage::Linear(_) => true,
            Stage::Conv(_) => true,
            Stage::Fixed(f) => match f {
                FixedStage::Relu(_) => true,
                FixedStage::Tanh(_) => true,
                FixedStage::Sigmoid(_) => true,
                FixedStage::MaxPool(_) => true,
                FixedStage::AvgPool(_) => true,
                // batch statistics couple rows across the whole batch
                FixedStage::BatchNorm1d { .. } => false,
                FixedStage::BatchNorm2d { .. } => false,
                // one RNG stream per layer, consumed in row order
                FixedStage::Dropout(_) => false,
                FixedStage::Flatten { .. } => true,
            },
        }
    }

    /// MAC operations the packed path actually executes for `subnet` (panel
    /// extents; 0 for fixed stages).
    pub fn packed_macs(&self, subnet: usize) -> u64 {
        match self {
            Stage::Linear(l) => l.packed_macs(subnet),
            Stage::Conv(c) => c.packed_macs(subnet),
            Stage::Fixed(_) => 0,
        }
    }

    /// Back-propagates through the stage (subnet context is whatever the last
    /// forward used).
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn backward(&mut self, g: &Tensor) -> Result<Tensor> {
        match self {
            Stage::Linear(l) => l.backward(g),
            Stage::Conv(c) => c.backward(g),
            Stage::Fixed(f) => Ok(f.layer_mut().backward(g)?),
        }
    }

    /// Trainable parameters of the stage.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            Stage::Linear(l) => l.params_mut(),
            Stage::Conv(c) => c.params_mut(),
            Stage::Fixed(f) => f.layer_mut().params_mut(),
        }
    }

    /// Whether this is a masked (steppable) stage.
    pub fn is_masked(&self) -> bool {
        matches!(self, Stage::Linear(_) | Stage::Conv(_))
    }

    /// Output-neuron assignment for masked stages.
    pub fn out_assign(&self) -> Option<&Assignment> {
        match self {
            Stage::Linear(l) => Some(l.out_assign()),
            Stage::Conv(c) => Some(c.out_assign()),
            Stage::Fixed(_) => None,
        }
    }

    /// Number of output neurons for masked stages.
    pub fn neuron_count(&self) -> Option<usize> {
        self.out_assign().map(Assignment::len)
    }

    /// MAC operations of `subnet` through this stage (0 for fixed stages —
    /// activations/pooling are not MACs, matching the paper's accounting).
    pub fn macs(&self, subnet: usize, threshold: f32) -> u64 {
        match self {
            Stage::Linear(l) => l.macs(subnet, threshold),
            Stage::Conv(c) => c.macs(subnet, threshold),
            Stage::Fixed(_) => 0,
        }
    }

    /// MAC contribution of output neuron `o` for masked stages.
    pub fn neuron_macs(&self, o: usize, threshold: f32) -> Option<u64> {
        match self {
            Stage::Linear(l) => Some(l.neuron_macs(o, threshold)),
            Stage::Conv(c) => Some(c.neuron_macs(o, threshold)),
            Stage::Fixed(_) => None,
        }
    }

    /// Selection criterion `M_o^i` for masked stages.
    pub fn selection_score(&self, o: usize, alpha: &[f64]) -> Option<f64> {
        match self {
            Stage::Linear(l) => Some(l.selection_score(o, alpha)),
            Stage::Conv(c) => Some(c.selection_score(o, alpha)),
            Stage::Fixed(_) => None,
        }
    }

    /// Naive magnitude criterion for masked stages (ablation baseline).
    pub fn magnitude_score(&self, o: usize) -> Option<f64> {
        match self {
            Stage::Linear(l) => Some(l.magnitude_score(o)),
            Stage::Conv(c) => Some(c.magnitude_score(o)),
            Stage::Fixed(_) => None,
        }
    }

    /// Moves output neuron `o` of a masked stage to `target`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SteppingError::InvalidStructure`] for fixed stages
    /// and propagates assignment errors.
    pub fn move_out_neuron(&mut self, o: usize, target: usize) -> Result<()> {
        match self {
            Stage::Linear(l) => l.move_out_neuron(o, target),
            Stage::Conv(c) => c.move_out_neuron(o, target),
            Stage::Fixed(f) => Err(crate::SteppingError::InvalidStructure(format!(
                "stage {} has no steppable neurons",
                f.name()
            ))),
        }
    }

    /// Replaces the input assignment of a masked stage (no-op for fixed).
    ///
    /// # Errors
    ///
    /// Propagates geometry mismatches.
    pub fn set_in_assign(&mut self, assign: Assignment) -> Result<()> {
        match self {
            Stage::Linear(l) => l.set_in_assign(assign),
            Stage::Conv(c) => c.set_in_assign(assign),
            Stage::Fixed(FixedStage::BatchNorm1d {
                layer,
                assign: slot,
            }) => {
                if assign.len() != layer.features() {
                    return Err(crate::SteppingError::InvalidStructure(format!(
                        "batch norm over {} features got assignment of {}",
                        layer.features(),
                        assign.len()
                    )));
                }
                *slot = Some(assign);
                Ok(())
            }
            Stage::Fixed(FixedStage::BatchNorm2d {
                layer,
                assign: slot,
            }) => {
                if assign.len() != layer.channels() {
                    return Err(crate::SteppingError::InvalidStructure(format!(
                        "batch norm over {} channels got assignment of {}",
                        layer.channels(),
                        assign.len()
                    )));
                }
                *slot = Some(assign);
                Ok(())
            }
            Stage::Fixed(_) => Ok(()),
        }
    }

    /// Non-permanent magnitude pruning; returns zeroed-weight count.
    pub fn prune(&mut self, threshold: f32) -> usize {
        match self {
            Stage::Linear(l) => l.prune(threshold),
            Stage::Conv(c) => c.prune(threshold),
            Stage::Fixed(_) => 0,
        }
    }

    /// Boolean mask of currently-zeroed weights on masked stages (empty for
    /// fixed stages), for revival tracking across a training round.
    pub fn zeroed_weights(&self) -> Vec<bool> {
        match self {
            Stage::Linear(l) => l.zeroed_weights(),
            Stage::Conv(c) => c.zeroed_weights(),
            Stage::Fixed(_) => Vec::new(),
        }
    }

    /// Counts weights zero in `before` now at magnitude `>= threshold`
    /// (always `0` for fixed stages).
    pub fn count_revived(&self, before: &[bool], threshold: f32) -> usize {
        match self {
            Stage::Linear(l) => l.count_revived(before, threshold),
            Stage::Conv(c) => c.count_revived(before, threshold),
            Stage::Fixed(_) => 0,
        }
    }

    /// Clears accumulated importance on masked stages.
    pub fn reset_importance(&mut self) {
        match self {
            Stage::Linear(l) => l.reset_importance(),
            Stage::Conv(c) => c.reset_importance(),
            Stage::Fixed(_) => {}
        }
    }

    /// Raw accumulated importance of a masked stage (flattened
    /// `[subnet][out]`); `None` for fixed stages.
    pub fn importance_values(&self) -> Option<&[f64]> {
        match self {
            Stage::Linear(l) => Some(l.importance_values()),
            Stage::Conv(c) => Some(c.importance_values()),
            Stage::Fixed(_) => None,
        }
    }

    /// Adds a merged importance delta into a masked stage; no-op for fixed
    /// stages given an empty delta.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SteppingError::InvalidStructure`] on length
    /// mismatch.
    pub fn add_importance_values(&mut self, delta: &[f64]) -> Result<()> {
        match self {
            Stage::Linear(l) => l.add_importance_values(delta),
            Stage::Conv(c) => c.add_importance_values(delta),
            Stage::Fixed(_) if delta.is_empty() => Ok(()),
            Stage::Fixed(_) => Err(crate::SteppingError::InvalidStructure(
                "importance delta for a fixed stage".into(),
            )),
        }
    }

    /// Installs weight-update suppression for training `subnet`.
    pub fn apply_lr_suppression(&mut self, subnet: usize, beta: f32) {
        match self {
            Stage::Linear(l) => l.apply_lr_suppression(subnet, beta),
            Stage::Conv(c) => c.apply_lr_suppression(subnet, beta),
            Stage::Fixed(_) => {}
        }
    }

    /// Removes weight-update suppression.
    pub fn clear_lr_suppression(&mut self) {
        match self {
            Stage::Linear(l) => l.clear_lr_suppression(),
            Stage::Conv(c) => c.clear_lr_suppression(),
            Stage::Fixed(_) => {}
        }
    }

    /// Human-readable stage kind.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Linear(_) => "MaskedLinear",
            Stage::Conv(_) => "MaskedConv2d",
            Stage::Fixed(f) => f.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepping_tensor::init::rng;
    use stepping_tensor::Shape;

    #[test]
    fn fixed_stage_dispatch() {
        let mut s = Stage::Fixed(FixedStage::Relu(Relu::new()));
        assert!(!s.is_masked());
        assert_eq!(s.name(), "Relu");
        assert!(s.out_assign().is_none());
        assert_eq!(s.macs(0, 0.0), 0);
        assert!(s.move_out_neuron(0, 1).is_err());
        let x = Tensor::from_vec(Shape::of(&[1, 2]), vec![-1.0, 1.0]).unwrap();
        let y = s.forward(&x, 0, true).unwrap();
        assert_eq!(y.data(), &[0.0, 1.0]);
        assert_eq!(s.prune(1.0), 0);
    }

    #[test]
    fn masked_stage_dispatch() {
        let mut s = Stage::Linear(MaskedLinear::new(2, 3, 2, &mut rng(0)));
        assert!(s.is_masked());
        assert_eq!(s.neuron_count(), Some(3));
        s.move_out_neuron(1, 1).unwrap();
        assert_eq!(s.out_assign().unwrap().subnet_of(1), 1);
        assert!(s.macs(1, 0.0) > s.macs(0, 0.0));
        assert!(s.neuron_macs(0, 0.0).is_some());
        assert!(s.selection_score(0, &[1.0, 1.5]).is_some());
    }

    #[test]
    fn flatten_factor_recorded() {
        let s = Stage::Fixed(FixedStage::Flatten {
            layer: Flatten::new(),
            factor: 4,
        });
        match s {
            Stage::Fixed(FixedStage::Flatten { factor, .. }) => assert_eq!(factor, 4),
            _ => unreachable!(),
        }
    }
}
