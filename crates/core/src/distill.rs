//! Knowledge-distillation retraining of constructed subnets (paper §III-B).
//!
//! After construction, every subnet is retrained in ascending order per epoch
//! with the combined cost of eq. 4,
//! `L'_i = γ·L_i + (1−γ)·KL(teacher ‖ subnet_i)`, where the teacher is the
//! pretrained original network. Weight-update suppression (`β^(j−i)`) remains
//! active so larger subnets don't destabilise smaller ones.

use stepping_data::{BatchIter, Dataset, Split};
use stepping_exec::ParallelConfig;
use stepping_nn::optim::Sgd;
use stepping_nn::schedule::LrSchedule;
use stepping_tensor::reduce;

use crate::parallel::{BatchLoss, ParallelRunner};
use crate::telemetry::{self, Value};
use crate::{Result, SteppingError, SteppingNet};

/// Options for [`distill`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistillOptions {
    /// Retraining epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Cross-entropy weight `γ` of eq. 4 (paper: 0.4).
    pub gamma: f32,
    /// Weight-update suppression base `β` (paper: 0.9).
    pub beta: f32,
    /// Whether suppression is active (Fig. 8 ablation).
    pub suppress_updates: bool,
    /// Whether the KL term is active; `false` retrains with plain
    /// cross-entropy (Fig. 8 ablation).
    pub use_distillation: bool,
    /// Per-epoch learning-rate schedule.
    pub schedule: LrSchedule,
    /// Shuffling seed.
    pub seed: u64,
    /// Data-parallel execution (defaults to the sequential reference).
    pub parallel: ParallelConfig,
}

impl Default for DistillOptions {
    fn default() -> Self {
        DistillOptions {
            epochs: 5,
            batch_size: 32,
            lr: 0.02,
            gamma: 0.4,
            beta: 0.9,
            suppress_updates: true,
            use_distillation: true,
            schedule: LrSchedule::Constant,
            seed: 0,
            parallel: ParallelConfig::default(),
        }
    }
}

/// Result of [`distill`].
#[derive(Debug, Clone, PartialEq)]
pub struct DistillReport {
    /// Mean loss per epoch per subnet (`losses[epoch][subnet]`).
    pub losses: Vec<Vec<f32>>,
}

fn validate(opts: &DistillOptions) -> Result<()> {
    if opts.epochs == 0 || opts.batch_size == 0 {
        return Err(SteppingError::BadConfig(
            "epochs and batch size must be nonzero".into(),
        ));
    }
    if !(0.0..=1.0).contains(&opts.gamma) {
        return Err(SteppingError::BadConfig(format!(
            "gamma {} must be in [0, 1]",
            opts.gamma
        )));
    }
    if !(0.0..=1.0).contains(&opts.beta) {
        return Err(SteppingError::BadConfig(format!(
            "beta {} must be in [0, 1]",
            opts.beta
        )));
    }
    if !opts.schedule.is_valid() {
        return Err(SteppingError::BadConfig(
            "invalid learning-rate schedule".into(),
        ));
    }
    Ok(())
}

/// Retrains every subnet of `net` with knowledge distillation against
/// `teacher` (evaluated on `teacher_subnet`, usually its full network 0).
///
/// The teacher is only read (inference mode); the student's subnets are
/// trained smallest-first within each epoch, as in the paper.
///
/// # Errors
///
/// Returns [`SteppingError::BadConfig`] for invalid options or mismatched
/// teacher/student class counts, and propagates training errors.
pub fn distill(
    net: &mut SteppingNet,
    teacher: &mut SteppingNet,
    teacher_subnet: usize,
    data: &dyn Dataset,
    opts: &DistillOptions,
) -> Result<DistillReport> {
    validate(opts)?;
    if teacher.classes() != net.classes() {
        return Err(SteppingError::BadConfig(format!(
            "teacher has {} classes, student has {}",
            teacher.classes(),
            net.classes()
        )));
    }
    let n = net.subnet_count();
    let run_span = telemetry::span("training", "distill.run");
    let runner = ParallelRunner::new(opts.parallel, "training")?;
    let mut sgd = Sgd::new(opts.lr).map_err(SteppingError::Nn)?;
    let mut losses = Vec::with_capacity(opts.epochs);
    for epoch in 0..opts.epochs {
        let epoch_span = telemetry::span("training", "distill.epoch");
        sgd.set_lr(opts.lr * opts.schedule.multiplier(epoch))
            .map_err(SteppingError::Nn)?;
        let mut epoch_losses = vec![0.0f32; n];
        let mut batch_counts = vec![0usize; n];
        // Cross-entropy component per subnet, accumulated only while an
        // observer listens (the KL component follows from eq. 4:
        // `L' = γ·CE + (1−γ)·KL`).
        let mut ce_sums = vec![0.0f64; n];
        for batch in BatchIter::new(data, Split::Train, opts.batch_size, epoch as u64, opts.seed) {
            let (x, y) = batch?;
            let teacher_probs = if opts.use_distillation {
                let t_logits = teacher.forward(&x, teacher_subnet, false)?;
                Some(reduce::softmax_rows(&t_logits)?)
            } else {
                None
            };
            // Ascending order: smallest subnet first (paper §III-B).
            for k in 0..n {
                if opts.suppress_updates {
                    net.apply_lr_suppression(k, opts.beta);
                } else {
                    net.clear_lr_suppression();
                }
                let batch_loss = match &teacher_probs {
                    Some(tp) => BatchLoss::Distill {
                        teacher_probs: tp,
                        gamma: opts.gamma,
                    },
                    None => BatchLoss::CrossEntropy,
                };
                let out = runner.train_batch(net, &x, &y, k, batch_loss, telemetry::enabled())?;
                if let Some(ce) = out.ce {
                    ce_sums[k] += f64::from(ce);
                }
                sgd.step(&mut net.params_for(k)?)
                    .map_err(SteppingError::Nn)?;
                epoch_losses[k] += out.loss;
                batch_counts[k] += 1;
            }
        }
        for (l, c) in epoch_losses.iter_mut().zip(batch_counts.iter()) {
            *l /= (*c).max(1) as f32;
        }
        if telemetry::enabled() {
            let gamma = f64::from(opts.gamma);
            for k in 0..n {
                let combined = f64::from(epoch_losses[k]);
                let ce = ce_sums[k] / batch_counts[k].max(1) as f64;
                // eq. 4 decomposition; without KD (or at γ = 1) the combined
                // loss is pure cross-entropy.
                let kl = if opts.use_distillation && gamma < 1.0 {
                    (combined - gamma * ce) / (1.0 - gamma)
                } else {
                    0.0
                };
                // The strongest update suppression actually applied while
                // training subnet k: β^(j−i) for the largest subnet j.
                let min_factor = if opts.suppress_updates {
                    f64::from(opts.beta).powi((n - 1 - k) as i32)
                } else {
                    1.0
                };
                telemetry::point(
                    "training",
                    "distill.subnet",
                    &[
                        ("epoch", Value::U64(epoch as u64)),
                        ("subnet", Value::U64(k as u64)),
                        ("loss", Value::F64(combined)),
                        ("loss_ce", Value::F64(ce)),
                        ("loss_kl", Value::F64(kl)),
                        ("gamma", Value::F64(gamma)),
                        ("suppression_min_factor", Value::F64(min_factor)),
                    ],
                );
                telemetry::counter(
                    "training",
                    "distill.batches",
                    batch_counts[k] as u64,
                    &[("subnet", Value::U64(k as u64))],
                );
            }
        }
        epoch_span.end(&[
            ("epoch", Value::U64(epoch as u64)),
            (
                "loss_mean",
                Value::F64(
                    epoch_losses.iter().map(|l| f64::from(*l)).sum::<f64>() / n.max(1) as f64,
                ),
            ),
        ]);
        losses.push(epoch_losses);
    }
    net.clear_lr_suppression();
    run_span.end(&[
        ("epochs", Value::U64(opts.epochs as u64)),
        ("gamma", Value::F64(f64::from(opts.gamma))),
        ("beta", Value::F64(f64::from(opts.beta))),
        ("kd", Value::Bool(opts.use_distillation)),
        ("suppressed", Value::Bool(opts.suppress_updates)),
    ]);
    Ok(DistillReport { losses })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::train::{train_subnet, TrainOptions};
    use crate::{construct, ConstructionOptions, SteppingNetBuilder};
    use stepping_data::{GaussianBlobs, GaussianBlobsConfig};
    use stepping_tensor::Shape;

    fn data() -> GaussianBlobs {
        GaussianBlobs::new(
            GaussianBlobsConfig {
                classes: 3,
                features: 10,
                train_per_class: 40,
                test_per_class: 12,
                separation: 3.0,
                noise_std: 0.7,
            },
            31,
        )
        .unwrap()
    }

    fn built_net(d: &GaussianBlobs) -> (crate::SteppingNet, crate::SteppingNet) {
        let mut net = SteppingNetBuilder::new(Shape::of(&[10]), 3, 8)
            .linear(20)
            .relu()
            .linear(14)
            .relu()
            .build(3)
            .unwrap();
        train_subnet(
            &mut net,
            d,
            0,
            &TrainOptions {
                epochs: 4,
                lr: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        // snapshot the pretrained original as teacher BEFORE construction
        let teacher = net.clone();
        let full = net.full_macs();
        let o = ConstructionOptions {
            mac_targets: vec![
                (full as f64 * 0.2) as u64,
                (full as f64 * 0.5) as u64,
                (full as f64 * 0.8) as u64,
            ],
            iterations: 10,
            batches_per_iter: 3,
            batch_size: 16,
            ..Default::default()
        };
        construct(&mut net, d, &o).unwrap();
        (net, teacher)
    }

    #[test]
    fn distillation_improves_or_maintains_subnet_accuracy() {
        let d = data();
        let (mut net, mut teacher) = built_net(&d);
        let before: Vec<f32> = (0..3)
            .map(|k| evaluate(&mut net, &d, Split::Test, k, 16).unwrap())
            .collect();
        let report = distill(
            &mut net,
            &mut teacher,
            0,
            &d,
            &DistillOptions {
                epochs: 6,
                lr: 0.05,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.losses.len(), 6);
        let after: Vec<f32> = (0..3)
            .map(|k| evaluate(&mut net, &d, Split::Test, k, 16).unwrap())
            .collect();
        // at least the smallest subnet should benefit from retraining
        assert!(
            after[0] >= before[0] - 0.05,
            "subnet0 degraded: before {before:?} after {after:?}"
        );
        // loss should broadly decrease
        let first: f32 = report.losses[0].iter().sum();
        let last: f32 = report.losses.last().unwrap().iter().sum();
        assert!(last <= first * 1.2, "losses diverged: {first} → {last}");
    }

    #[test]
    fn distill_validates_options() {
        let d = data();
        let (mut net, mut teacher) = built_net(&d);
        let bad = DistillOptions {
            gamma: 2.0,
            ..Default::default()
        };
        assert!(distill(&mut net, &mut teacher, 0, &d, &bad).is_err());
        let bad = DistillOptions {
            epochs: 0,
            ..Default::default()
        };
        assert!(distill(&mut net, &mut teacher, 0, &d, &bad).is_err());
    }

    #[test]
    fn ablation_without_kd_uses_cross_entropy() {
        let d = data();
        let (mut net, mut teacher) = built_net(&d);
        let report = distill(
            &mut net,
            &mut teacher,
            0,
            &d,
            &DistillOptions {
                use_distillation: false,
                epochs: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.losses.len(), 2);
    }
}
