use std::fmt;

use stepping_data::DataError;
use stepping_nn::NnError;
use stepping_tensor::TensorError;

/// Error type for SteppingNet construction, training and inference.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SteppingError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An underlying neural-network operation failed.
    Nn(NnError),
    /// An underlying dataset operation failed.
    Data(DataError),
    /// A subnet index exceeded the configured subnet count.
    SubnetOutOfRange {
        /// The offending subnet index.
        subnet: usize,
        /// Number of subnets.
        count: usize,
    },
    /// A network was built or mutated in a way that breaks the nesting /
    /// incremental-property invariants.
    InvalidStructure(String),
    /// Configuration of a construction or distillation run is invalid.
    BadConfig(String),
    /// The incremental executor was driven out of order
    /// (e.g. `expand` before `begin`).
    ExecutorState(String),
    /// A parallel worker failed: a job panicked inside the execution pool or
    /// the pool shut down mid-run. Carries the pool's description.
    Worker(String),
}

impl fmt::Display for SteppingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SteppingError::Tensor(e) => write!(f, "tensor error: {e}"),
            SteppingError::Nn(e) => write!(f, "nn error: {e}"),
            SteppingError::Data(e) => write!(f, "data error: {e}"),
            SteppingError::SubnetOutOfRange { subnet, count } => {
                write!(f, "subnet {subnet} out of range for {count} subnets")
            }
            SteppingError::InvalidStructure(msg) => write!(f, "invalid structure: {msg}"),
            SteppingError::BadConfig(msg) => write!(f, "bad config: {msg}"),
            SteppingError::ExecutorState(msg) => write!(f, "executor state: {msg}"),
            SteppingError::Worker(msg) => write!(f, "worker error: {msg}"),
        }
    }
}

impl std::error::Error for SteppingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SteppingError::Tensor(e) => Some(e),
            SteppingError::Nn(e) => Some(e),
            SteppingError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for SteppingError {
    fn from(e: TensorError) -> Self {
        SteppingError::Tensor(e)
    }
}

impl From<NnError> for SteppingError {
    fn from(e: NnError) -> Self {
        SteppingError::Nn(e)
    }
}

impl From<DataError> for SteppingError {
    fn from(e: DataError) -> Self {
        SteppingError::Data(e)
    }
}

impl From<stepping_exec::PoolError> for SteppingError {
    fn from(e: stepping_exec::PoolError) -> Self {
        SteppingError::Worker(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: SteppingError = TensorError::InvalidArgument("x".into()).into();
        assert!(e.to_string().starts_with("tensor"));
        let e: SteppingError = NnError::BadInput("y".into()).into();
        assert!(e.to_string().starts_with("nn"));
        let e: SteppingError = DataError::BadConfig("z".into()).into();
        assert!(e.to_string().starts_with("data"));
        let e = SteppingError::SubnetOutOfRange {
            subnet: 4,
            count: 3,
        };
        assert!(e.to_string().contains('4'));
        assert!(std::error::Error::source(&e).is_none());
        let e: SteppingError = stepping_exec::PoolError::Panicked("boom".into()).into();
        assert!(matches!(&e, SteppingError::Worker(m) if m.contains("boom")));
        assert!(e.to_string().starts_with("worker"));
    }
}
