//! Batched cached-activation execution — the serving-side counterpart of
//! [`IncrementalExecutor`](crate::IncrementalExecutor).
//!
//! A serving engine handles many concurrent requests whose anytime state
//! must outlive any single executor borrow. This module therefore splits
//! the executor into two pieces:
//!
//! * [`ActivationCache`] — the per-request state (stage activations, the
//!   subnet currently answered, the largest subnet materialised in the
//!   caches, cumulative MACs). It is plain data: it can be stored in a
//!   session table, shipped between worker threads, and upgraded later.
//! * [`BatchExecutor`] — a short-lived borrow of the net that runs **one
//!   batched stage pass for several requests at once**: inputs (or cached
//!   activations) are stacked along the batch dimension, every stage runs
//!   once, and the results are split back into the per-request caches.
//!
//! Because every kernel in this workspace computes each batch row
//! independently (row-major loops, per-sample `im2col`, inference-mode
//! batch norm via running statistics), batched execution is **bit-identical**
//! to running each request alone — the property the serve crate's tests
//! assert exhaustively.

use stepping_tensor::{Shape, Tensor};

use crate::telemetry::{self, Value};
use crate::{ExpandStep, FixedStage, Result, Stage, SteppingError, SteppingNet};

/// Per-request anytime-inference state, detached from any executor borrow.
///
/// `acts[i]` is the input of stage `i`; `acts[stages]` is the feature tensor
/// feeding the heads. An empty cache (before any `begin`) holds no
/// activations.
#[derive(Debug, Clone, Default)]
pub struct ActivationCache {
    pub(crate) acts: Vec<Tensor>,
    pub(crate) current: Option<usize>,
    pub(crate) computed: usize,
    pub(crate) cumulative_macs: u64,
}

impl ActivationCache {
    /// An empty cache; populate it with [`BatchExecutor::begin`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The subnet most recently answered from this cache, if any.
    pub fn current_subnet(&self) -> Option<usize> {
        self.current
    }

    /// Largest subnet whose neurons are materialised in the cached
    /// activations; re-expanding up to this level costs only the head.
    pub fn computed_level(&self) -> usize {
        self.computed
    }

    /// Total MACs charged to this request since its `begin`.
    pub fn cumulative_macs(&self) -> u64 {
        self.cumulative_macs
    }

    /// Whether `begin` has populated this cache.
    pub fn is_initialised(&self) -> bool {
        self.current.is_some()
    }

    /// Number of batch rows held by this cache (0 before `begin`).
    pub fn rows(&self) -> usize {
        self.acts.first().map(|a| a.shape().dims()[0]).unwrap_or(0)
    }
}

/// Runs the full stage stack plus the head of `subnet` on `input`
/// (inference mode) through the packed execution plans, returning every
/// intermediate activation and the logits. Shared by the incremental
/// executor's `begin` and the batched path. Bit-identical (under `f32 ==`)
/// to the masked reference pass — see [`crate::plan`].
pub(crate) fn full_pass(
    net: &mut SteppingNet,
    input: &Tensor,
    subnet: usize,
) -> Result<(Vec<Tensor>, Tensor)> {
    let mut acts = Vec::with_capacity(net.stages().len() + 1);
    acts.push(input.clone());
    for si in 0..net.stages().len() {
        let out = net.stages_mut()[si].forward_packed(&acts[si], subnet)?;
        acts.push(out);
    }
    let features = last_act(&acts)?.clone();
    let logits = net.head_forward_packed(&features, subnet)?;
    Ok((acts, logits))
}

/// The feature activation (last element) of an activation stack, as a typed
/// error instead of a panic when the stack is empty (an uninitialised
/// cache).
pub(crate) fn last_act(acts: &[Tensor]) -> Result<&Tensor> {
    acts.last()
        .ok_or_else(|| SteppingError::ExecutorState("activation cache holds no levels".into()))
}

/// Expands cached activations from subnet `k - 1` to `k`, computing only
/// the newly added neurons plus subnet `k`'s head. Mutates `acts` in place
/// and returns the logits and the MACs spent (per sample). Shared by the
/// incremental executor's `expand` and the batched path.
pub(crate) fn expand_pass(
    net: &mut SteppingNet,
    acts: &mut [Tensor],
    k: usize,
    prune_threshold: f32,
) -> Result<(Tensor, u64)> {
    let mut step_macs = 0u64;
    for si in 0..net.stages().len() {
        let (done, rest) = acts.split_at_mut(si + 1);
        let input = &done[si];
        let target = &mut rest[0];
        match &mut net.stages_mut()[si] {
            Stage::Linear(l) => {
                let rows = l.out_assign().members(k);
                if !rows.is_empty() {
                    for &o in &rows {
                        step_macs += l.neuron_macs(o, prune_threshold);
                    }
                    // Fused gather→GEMM→scatter: the step panel lands
                    // directly in the cached activation's columns.
                    l.forward_step_packed_into(input, k, target)?;
                }
            }
            Stage::Conv(c) => {
                let chans = c.out_assign().members(k);
                if !chans.is_empty() {
                    for &oc in &chans {
                        step_macs += c.neuron_macs(oc, prune_threshold);
                    }
                    // Fused im2col→GEMM→scatter into the cached channels.
                    c.forward_step_packed_into(input, k, target)?;
                }
            }
            Stage::Fixed(f) => {
                // Fixed stages are pure per-channel/per-element maps in
                // inference mode; recompute on the updated input (no
                // MACs). Cached channels keep their exact old values.
                *target = fixed_forward(f, input)?;
            }
        }
    }
    let features = last_act(acts)?.clone();
    let logits = net.head_forward_packed(&features, k)?;
    step_macs += net.head_macs(k);
    Ok((logits, step_macs))
}

pub(crate) fn fixed_forward(f: &mut FixedStage, input: &Tensor) -> Result<Tensor> {
    use stepping_nn::Layer as _;
    Ok(match f {
        FixedStage::Relu(l) => l.forward(input, false)?,
        FixedStage::Tanh(l) => l.forward(input, false)?,
        FixedStage::Sigmoid(l) => l.forward(input, false)?,
        FixedStage::MaxPool(l) => l.forward(input, false)?,
        FixedStage::AvgPool(l) => l.forward(input, false)?,
        FixedStage::BatchNorm1d { layer, .. } => layer.forward(input, false)?,
        FixedStage::BatchNorm2d { layer, .. } => layer.forward(input, false)?,
        FixedStage::Flatten { layer, .. } => layer.forward(input, false)?,
        FixedStage::Dropout(l) => l.forward(input, false)?,
    })
}

/// Writes `fresh` (`[n, cols.len()]`) into columns `cols` of `target`
/// (`[n, width]`). Superseded on the hot path by the fused
/// `forward_step_packed_into` scatter; kept as the test oracle for splice
/// semantics.
#[cfg(test)]
pub(crate) fn splice_columns(target: &mut Tensor, fresh: &Tensor, cols: &[usize]) -> Result<()> {
    let dims = target.shape().dims().to_vec();
    if dims.len() != 2 {
        return Err(SteppingError::InvalidStructure(format!(
            "column splice expects a matrix, got {}",
            target.shape()
        )));
    }
    let (n, width) = (dims[0], dims[1]);
    if fresh.shape().dims() != [n, cols.len()] {
        return Err(SteppingError::InvalidStructure(format!(
            "fresh columns {} do not match [{n}, {}]",
            fresh.shape(),
            cols.len()
        )));
    }
    let td = target.data_mut();
    for b in 0..n {
        for (ci, &c) in cols.iter().enumerate() {
            td[b * width + c] = fresh.data()[b * cols.len() + ci];
        }
    }
    Ok(())
}

/// Writes `fresh` (`[n, chans.len(), h, w]`) into channels `chans` of
/// `target` (`[n, c, h, w]`). Superseded on the hot path by the fused
/// `forward_step_packed_into` scatter; kept as the test oracle for splice
/// semantics.
#[cfg(test)]
pub(crate) fn splice_channels(target: &mut Tensor, fresh: &Tensor, chans: &[usize]) -> Result<()> {
    let dims = target.shape().dims().to_vec();
    if dims.len() != 4 {
        return Err(SteppingError::InvalidStructure(format!(
            "channel splice expects NCHW, got {}",
            target.shape()
        )));
    }
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let hw = h * w;
    if fresh.shape().dims() != [n, chans.len(), h, w] {
        return Err(SteppingError::InvalidStructure(format!(
            "fresh channels {} do not match [{n}, {}, {h}, {w}]",
            fresh.shape(),
            chans.len()
        )));
    }
    let td = target.data_mut();
    for b in 0..n {
        for (ci, &ch) in chans.iter().enumerate() {
            let src = &fresh.data()[(b * chans.len() + ci) * hw..][..hw];
            td[(b * c + ch) * hw..][..hw].copy_from_slice(src);
        }
    }
    Ok(())
}

/// Concatenates tensors along the batch (first) dimension. A single part is
/// returned as a cheap clone.
fn stack_rows(parts: &[&Tensor]) -> Result<Tensor> {
    let first = parts
        .first()
        .ok_or_else(|| SteppingError::BadConfig("cannot stack an empty batch".into()))?;
    if parts.len() == 1 {
        return Ok((*first).clone());
    }
    let trailing = &first.shape().dims()[1..];
    let mut rows = 0usize;
    for p in parts {
        if p.shape().rank() != first.shape().rank() || &p.shape().dims()[1..] != trailing {
            return Err(SteppingError::InvalidStructure(format!(
                "batch members disagree on shape: {} vs {}",
                first.shape(),
                p.shape()
            )));
        }
        rows += p.shape().dims()[0];
    }
    let mut dims = first.shape().dims().to_vec();
    dims[0] = rows;
    let mut data = Vec::with_capacity(dims.iter().product());
    for p in parts {
        data.extend_from_slice(p.data());
    }
    Ok(Tensor::from_vec(Shape::of(&dims), data)?)
}

/// Splits `t` back into parts of `row_counts` batch rows each.
fn split_rows(t: &Tensor, row_counts: &[usize]) -> Result<Vec<Tensor>> {
    if row_counts.len() == 1 {
        return Ok(vec![t.clone()]);
    }
    let dims = t.shape().dims();
    let total: usize = row_counts.iter().sum();
    if dims[0] != total {
        return Err(SteppingError::InvalidStructure(format!(
            "cannot split {} rows into {total}",
            dims[0]
        )));
    }
    let row_len: usize = dims[1..].iter().product::<usize>().max(1);
    let mut out = Vec::with_capacity(row_counts.len());
    let mut offset = 0usize;
    for &rc in row_counts {
        let mut part_dims = dims.to_vec();
        part_dims[0] = rc;
        let data = t.data()[offset * row_len..(offset + rc) * row_len].to_vec();
        out.push(Tensor::from_vec(Shape::of(&part_dims), data)?);
        offset += rc;
    }
    Ok(out)
}

/// Executes micro-batches of requests over a [`SteppingNet`], one batched
/// stage pass per step, maintaining each request's [`ActivationCache`].
///
/// All requests in a batch must sit at the **same subnet level** (the serve
/// scheduler's compatibility rule); the executor validates this and rejects
/// mixed batches.
///
/// # Example
///
/// ```
/// use stepping_core::{batch::BatchExecutor, SteppingNetBuilder};
/// use stepping_tensor::{Shape, Tensor};
///
/// let mut net = SteppingNetBuilder::new(Shape::of(&[4]), 2, 0)
///     .linear(6).relu().build(3)?;
/// net.move_neuron(0, 5, 1)?;
/// let inputs = vec![Tensor::zeros(Shape::of(&[1, 4])), Tensor::ones(Shape::of(&[1, 4]))];
/// let mut exec = BatchExecutor::new(&mut net, 0.0);
/// let mut started = exec.begin(&inputs, 0)?;
/// let mut caches: Vec<_> = started.drain(..).map(|(c, _)| c).collect();
/// let steps = exec.expand(&mut caches)?; // both requests step to subnet 1 in one pass
/// assert_eq!(steps.len(), 2);
/// # Ok::<(), stepping_core::SteppingError>(())
/// ```
#[derive(Debug)]
pub struct BatchExecutor<'a> {
    net: &'a mut SteppingNet,
    prune_threshold: f32,
}

impl<'a> BatchExecutor<'a> {
    /// Creates a batch executor over `net`; `prune_threshold` is the
    /// magnitude threshold used for MAC accounting.
    pub fn new(net: &'a mut SteppingNet, prune_threshold: f32) -> Self {
        BatchExecutor {
            net,
            prune_threshold,
        }
    }

    /// The underlying network.
    pub fn net(&self) -> &SteppingNet {
        self.net
    }

    /// Runs subnet `subnet` for every input in **one** batched stage pass,
    /// returning each request's freshly populated cache and step outcome.
    ///
    /// Each request's `step_macs` is the per-sample cost `macs(subnet)` —
    /// identical to what a lone
    /// [`IncrementalExecutor`](crate::IncrementalExecutor) would charge.
    ///
    /// # Errors
    ///
    /// Rejects an empty batch, an out-of-range subnet, and shape-mismatched
    /// inputs; propagates forward errors.
    pub fn begin(
        &mut self,
        inputs: &[Tensor],
        subnet: usize,
    ) -> Result<Vec<(ActivationCache, ExpandStep)>> {
        if inputs.is_empty() {
            return Err(SteppingError::BadConfig(
                "cannot begin an empty batch".into(),
            ));
        }
        if subnet >= self.net.subnet_count() {
            return Err(SteppingError::SubnetOutOfRange {
                subnet,
                count: self.net.subnet_count(),
            });
        }
        let span = telemetry::span("inference", "exec.batch_begin");
        let row_counts: Vec<usize> = inputs.iter().map(|t| t.shape().dims()[0]).collect();
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let stacked = stack_rows(&refs)?;
        let (acts, logits) = full_pass(self.net, &stacked, subnet)?;
        let step_macs = self.net.macs(subnet, self.prune_threshold);
        // Transpose [level][request] slices back into per-request caches.
        let mut per_req: Vec<Vec<Tensor>> = (0..inputs.len())
            .map(|_| Vec::with_capacity(acts.len()))
            .collect();
        for level in &acts {
            for (i, part) in split_rows(level, &row_counts)?.into_iter().enumerate() {
                per_req[i].push(part);
            }
        }
        let logit_parts = split_rows(&logits, &row_counts)?;
        span.end(&[
            ("batch", Value::U64(inputs.len() as u64)),
            ("subnet", Value::U64(subnet as u64)),
            ("step_macs", Value::U64(step_macs)),
        ]);
        Ok(per_req
            .into_iter()
            .zip(logit_parts)
            .map(|(req_acts, req_logits)| {
                (
                    ActivationCache {
                        acts: req_acts,
                        current: Some(subnet),
                        computed: subnet,
                        cumulative_macs: step_macs,
                    },
                    ExpandStep {
                        subnet,
                        logits: req_logits,
                        step_macs,
                        cumulative_macs: step_macs,
                    },
                )
            })
            .collect())
    }

    /// Steps every cache to the next larger subnet in **one** batched pass.
    ///
    /// All caches must sit at the same current subnet. When every cache
    /// already materialises the target level (after contractions) only the
    /// head runs; otherwise the pass computes exactly the newly added
    /// neurons, splicing them into each request's cached activations.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::ExecutorState`] for an uninitialised cache,
    /// mixed levels, or a batch already at the largest subnet; propagates
    /// forward errors.
    pub fn expand(&mut self, caches: &mut [ActivationCache]) -> Result<Vec<ExpandStep>> {
        if caches.is_empty() {
            return Ok(Vec::new());
        }
        let cur = caches[0].current.ok_or_else(|| {
            SteppingError::ExecutorState("batch expand called before begin".into())
        })?;
        if caches.iter().any(|c| c.current != Some(cur)) {
            return Err(SteppingError::ExecutorState(
                "batch members sit at different subnet levels".into(),
            ));
        }
        let k = cur + 1;
        if k >= self.net.subnet_count() {
            return Err(SteppingError::ExecutorState(format!(
                "already at largest subnet {cur}"
            )));
        }
        let head_only = caches.iter().all(|c| k <= c.computed);
        if !head_only && caches.iter().any(|c| k <= c.computed) {
            return Err(SteppingError::ExecutorState(
                "batch mixes head-only and fresh expansions".into(),
            ));
        }
        let span = telemetry::span("inference", "exec.batch_expand");
        let row_counts: Vec<usize> = caches.iter().map(|c| c.rows()).collect();
        let (logits, step_macs) = if head_only {
            let feats: Vec<&Tensor> = caches
                .iter()
                .map(|c| last_act(&c.acts))
                .collect::<Result<_>>()?;
            let features = stack_rows(&feats)?;
            let logits = self.net.head_forward_packed(&features, k)?;
            (logits, self.net.head_macs(k))
        } else {
            let levels = caches[0].acts.len();
            let mut stacked = Vec::with_capacity(levels);
            for li in 0..levels {
                let parts: Vec<&Tensor> = caches.iter().map(|c| &c.acts[li]).collect();
                stacked.push(stack_rows(&parts)?);
            }
            let (logits, step_macs) = expand_pass(self.net, &mut stacked, k, self.prune_threshold)?;
            for (li, level) in stacked.iter().enumerate() {
                for (i, part) in split_rows(level, &row_counts)?.into_iter().enumerate() {
                    caches[i].acts[li] = part;
                }
            }
            (logits, step_macs)
        };
        let logit_parts = split_rows(&logits, &row_counts)?;
        let mut steps = Vec::with_capacity(caches.len());
        for (cache, req_logits) in caches.iter_mut().zip(logit_parts) {
            cache.current = Some(k);
            if !head_only {
                cache.computed = k;
            }
            cache.cumulative_macs += step_macs;
            steps.push(ExpandStep {
                subnet: k,
                logits: req_logits,
                step_macs,
                cumulative_macs: cache.cumulative_macs,
            });
        }
        span.end(&[
            ("batch", Value::U64(caches.len() as u64)),
            ("subnet", Value::U64(k as u64)),
            ("step_macs", Value::U64(step_macs)),
            ("head_only", Value::Bool(head_only)),
        ]);
        Ok(steps)
    }

    /// Steps every cache down to the next smaller subnet — head-only, the
    /// cached larger-subnet activations are reused verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::ExecutorState`] for uninitialised caches,
    /// mixed levels, or a batch already at subnet 0.
    pub fn contract(&mut self, caches: &mut [ActivationCache]) -> Result<Vec<ExpandStep>> {
        if caches.is_empty() {
            return Ok(Vec::new());
        }
        let cur = caches[0].current.ok_or_else(|| {
            SteppingError::ExecutorState("batch contract called before begin".into())
        })?;
        if caches.iter().any(|c| c.current != Some(cur)) {
            return Err(SteppingError::ExecutorState(
                "batch members sit at different subnet levels".into(),
            ));
        }
        if cur == 0 {
            return Err(SteppingError::ExecutorState(
                "already at smallest subnet".into(),
            ));
        }
        let k = cur - 1;
        let row_counts: Vec<usize> = caches.iter().map(|c| c.rows()).collect();
        let feats: Vec<&Tensor> = caches
            .iter()
            .map(|c| last_act(&c.acts))
            .collect::<Result<_>>()?;
        let features = stack_rows(&feats)?;
        let logits = self.net.head_forward_packed(&features, k)?;
        let step_macs = self.net.head_macs(k);
        let logit_parts = split_rows(&logits, &row_counts)?;
        let mut steps = Vec::with_capacity(caches.len());
        for (cache, req_logits) in caches.iter_mut().zip(logit_parts) {
            cache.current = Some(k);
            cache.cumulative_macs += step_macs;
            steps.push(ExpandStep {
                subnet: k,
                logits: req_logits,
                step_macs,
                cumulative_macs: cache.cumulative_macs,
            });
        }
        Ok(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IncrementalExecutor, SteppingNetBuilder};
    use stepping_tensor::init;

    fn mlp() -> SteppingNet {
        let mut net = SteppingNetBuilder::new(Shape::of(&[6]), 3, 1)
            .linear(10)
            .relu()
            .linear(8)
            .relu()
            .build(4)
            .unwrap();
        net.move_neurons(&[(0, 1, 1), (0, 2, 2), (0, 3, 1), (2, 0, 1), (2, 5, 2)])
            .unwrap();
        net
    }

    fn cnn() -> SteppingNet {
        let mut net = SteppingNetBuilder::new(Shape::of(&[2, 8, 8]), 3, 2)
            .conv(5, 3, 1, 1)
            .batch_norm()
            .relu()
            .max_pool(2, 2)
            .flatten()
            .linear(9)
            .relu()
            .build(3)
            .unwrap();
        net.move_neurons(&[(0, 0, 1), (0, 4, 2), (5, 2, 1), (5, 7, 2)])
            .unwrap();
        net
    }

    fn samples(n: usize, dims: &[usize], seed: u64) -> Vec<Tensor> {
        (0..n)
            .map(|i| {
                let mut d = vec![1usize];
                d.extend_from_slice(dims);
                init::uniform(Shape::of(&d), -1.0, 1.0, &mut init::rng(seed + i as u64))
            })
            .collect()
    }

    #[test]
    fn batched_begin_and_expand_match_lone_executor_bitwise() {
        let inputs = samples(5, &[6], 20);
        let mut net = mlp();
        let mut batch = BatchExecutor::new(&mut net, 1e-5);
        let mut started = batch.begin(&inputs, 0).unwrap();
        let mut caches: Vec<ActivationCache> = Vec::new();
        let mut batch_logits: Vec<Vec<Tensor>> = Vec::new();
        for (c, s) in started.drain(..) {
            caches.push(c);
            batch_logits.push(vec![s.logits]);
        }
        for _ in 0..2 {
            for (i, s) in batch.expand(&mut caches).unwrap().into_iter().enumerate() {
                batch_logits[i].push(s.logits);
            }
        }
        for (i, x) in inputs.iter().enumerate() {
            let mut lone_net = mlp();
            let mut lone = IncrementalExecutor::new(&mut lone_net, 1e-5);
            let steps = lone.run_to(x, 2).unwrap();
            for (k, step) in steps.iter().enumerate() {
                assert_eq!(
                    step.logits, batch_logits[i][k],
                    "request {i} subnet {k} differs"
                );
            }
            assert_eq!(caches[i].cumulative_macs(), lone.cumulative_macs());
        }
    }

    #[test]
    fn batched_cnn_matches_from_scratch() {
        let mut net = cnn();
        let warm = init::uniform(Shape::of(&[4, 2, 8, 8]), -1.0, 1.0, &mut init::rng(6));
        for _ in 0..3 {
            net.forward(&warm, 2, true).unwrap();
        }
        let inputs = samples(3, &[2, 8, 8], 30);
        let mut scratch = net.clone();
        let mut batch = BatchExecutor::new(&mut net, 1e-5);
        let mut caches: Vec<ActivationCache> = batch
            .begin(&inputs, 0)
            .unwrap()
            .into_iter()
            .map(|(c, _)| c)
            .collect();
        batch.expand(&mut caches).unwrap();
        let final_steps = batch.expand(&mut caches).unwrap();
        for (i, x) in inputs.iter().enumerate() {
            let reference = scratch.forward(x, 2, false).unwrap();
            assert_eq!(final_steps[i].logits, reference, "request {i} differs");
        }
    }

    #[test]
    fn begin_at_larger_subnet_skips_smaller_heads() {
        let inputs = samples(2, &[6], 40);
        let mut net = mlp();
        let expected = net.macs(1, 0.0);
        let mut batch = BatchExecutor::new(&mut net, 0.0);
        let started = batch.begin(&inputs, 1).unwrap();
        for (cache, step) in &started {
            assert_eq!(step.subnet, 1);
            assert_eq!(step.step_macs, expected);
            assert_eq!(cache.computed_level(), 1);
        }
        // and the logits equal a from-scratch subnet-1 forward
        let mut scratch = mlp();
        for (i, x) in inputs.iter().enumerate() {
            let reference = scratch.forward(x, 1, false).unwrap();
            assert_eq!(started[i].1.logits, reference);
        }
    }

    #[test]
    fn contract_then_head_only_reexpand() {
        let inputs = samples(3, &[6], 50);
        let mut net = mlp();
        let head1 = net.head_macs(1);
        let head2 = net.head_macs(2);
        let mut batch = BatchExecutor::new(&mut net, 0.0);
        let mut caches: Vec<ActivationCache> = batch
            .begin(&inputs, 0)
            .unwrap()
            .into_iter()
            .map(|(c, _)| c)
            .collect();
        batch.expand(&mut caches).unwrap();
        batch.expand(&mut caches).unwrap();
        let down = batch.contract(&mut caches).unwrap();
        assert!(down.iter().all(|s| s.subnet == 1 && s.step_macs == head1));
        let up = batch.expand(&mut caches).unwrap();
        assert!(up.iter().all(|s| s.subnet == 2 && s.step_macs == head2));
    }

    #[test]
    fn mixed_levels_rejected() {
        let inputs = samples(2, &[6], 60);
        let mut net = mlp();
        let mut batch = BatchExecutor::new(&mut net, 0.0);
        let mut caches: Vec<ActivationCache> = batch
            .begin(&inputs, 0)
            .unwrap()
            .into_iter()
            .map(|(c, _)| c)
            .collect();
        // advance only the first cache
        let mut first = vec![caches.remove(0)];
        batch.expand(&mut first).unwrap();
        caches.insert(0, first.remove(0));
        assert!(batch.expand(&mut caches).is_err());
    }

    #[test]
    fn validates_batch_shape_and_bounds() {
        let mut net = mlp();
        let mut batch = BatchExecutor::new(&mut net, 0.0);
        assert!(batch.begin(&[], 0).is_err());
        let x = Tensor::zeros(Shape::of(&[1, 6]));
        assert!(batch.begin(std::slice::from_ref(&x), 9).is_err());
        let bad = Tensor::zeros(Shape::of(&[1, 5]));
        assert!(batch.begin(&[x, bad], 0).is_err());
        let mut empty: Vec<ActivationCache> = vec![ActivationCache::new()];
        assert!(batch.expand(&mut empty).is_err());
        assert!(batch.contract(&mut empty).is_err());
    }

    #[test]
    fn stack_and_split_round_trip() {
        let a = Tensor::from_vec(Shape::of(&[1, 2]), vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(Shape::of(&[2, 2]), vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let stacked = stack_rows(&[&a, &b]).unwrap();
        assert_eq!(stacked.shape().dims(), &[3, 2]);
        let parts = split_rows(&stacked, &[1, 2]).unwrap();
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
        assert!(stack_rows(&[]).is_err());
        let c = Tensor::zeros(Shape::of(&[1, 3]));
        assert!(stack_rows(&[&a, &c]).is_err());
        assert!(split_rows(&stacked, &[1, 1]).is_err());
    }
}
