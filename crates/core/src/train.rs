//! Plain training loops for stepping networks.
//!
//! [`train_subnet`] trains one subnet with cross-entropy SGD; it is used to
//! pretrain the "original network" (a fresh [`SteppingNet`] has every neuron
//! in subnet 0, so subnet 0 *is* the full network), which
//! then serves as both the construction starting point and the
//! knowledge-distillation teacher.

use stepping_data::{BatchIter, Dataset, Split};
use stepping_exec::ParallelConfig;
use stepping_nn::optim::Sgd;
use stepping_nn::schedule::LrSchedule;
use stepping_tensor::{reduce, Tensor};

use crate::parallel::{BatchLoss, ParallelRunner};
use crate::telemetry::{self, Value};
use crate::{Result, SteppingError, SteppingNet};

/// Options for [`train_subnet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainOptions {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Per-epoch learning-rate schedule.
    pub schedule: LrSchedule,
    /// Shuffling seed.
    pub seed: u64,
    /// Data-parallel execution (defaults to the sequential reference).
    pub parallel: ParallelConfig,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 5,
            batch_size: 32,
            lr: 0.05,
            schedule: LrSchedule::Constant,
            seed: 0,
            parallel: ParallelConfig::default(),
        }
    }
}

/// Trains `subnet` of `net` with cross-entropy SGD; returns the mean training
/// loss of each epoch.
///
/// # Errors
///
/// Returns configuration errors for a bad subnet/batch size and propagates
/// forward/backward errors.
///
/// # Example
///
/// ```
/// use stepping_core::{train::{train_subnet, TrainOptions}, SteppingNetBuilder};
/// use stepping_data::{GaussianBlobs, GaussianBlobsConfig};
/// use stepping_tensor::Shape;
///
/// let data = GaussianBlobs::new(GaussianBlobsConfig::default(), 1)?;
/// let mut net = SteppingNetBuilder::new(Shape::of(&[16]), 2, 0)
///     .linear(12).relu().build(4)?;
/// let losses = train_subnet(&mut net, &data, 0, &TrainOptions { epochs: 2, ..Default::default() })?;
/// assert_eq!(losses.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn train_subnet(
    net: &mut SteppingNet,
    data: &dyn Dataset,
    subnet: usize,
    opts: &TrainOptions,
) -> Result<Vec<f32>> {
    if subnet >= net.subnet_count() {
        return Err(SteppingError::SubnetOutOfRange {
            subnet,
            count: net.subnet_count(),
        });
    }
    if opts.batch_size == 0 || opts.epochs == 0 {
        return Err(SteppingError::BadConfig(
            "epochs and batch size must be nonzero".into(),
        ));
    }
    if !opts.schedule.is_valid() {
        return Err(SteppingError::BadConfig(
            "invalid learning-rate schedule".into(),
        ));
    }
    let run_span = telemetry::span("training", "train.subnet");
    let runner = ParallelRunner::new(opts.parallel, "training")?;
    let mut sgd = Sgd::new(opts.lr).map_err(SteppingError::Nn)?;
    let mut epoch_losses = Vec::with_capacity(opts.epochs);
    for epoch in 0..opts.epochs {
        let epoch_span = telemetry::span("training", "train.epoch");
        let lr = opts.lr * opts.schedule.multiplier(epoch);
        sgd.set_lr(lr).map_err(SteppingError::Nn)?;
        let mut total = 0.0;
        let mut batches = 0;
        for batch in BatchIter::new(data, Split::Train, opts.batch_size, epoch as u64, opts.seed) {
            let (x, y) = batch?;
            let out = runner.train_batch(net, &x, &y, subnet, BatchLoss::CrossEntropy, false)?;
            sgd.step(&mut net.params_for(subnet)?)
                .map_err(SteppingError::Nn)?;
            total += out.loss;
            batches += 1;
        }
        let mean = total / batches.max(1) as f32;
        epoch_losses.push(mean);
        telemetry::counter(
            "training",
            "train.batches",
            batches as u64,
            &[
                ("subnet", Value::U64(subnet as u64)),
                ("epoch", Value::U64(epoch as u64)),
            ],
        );
        epoch_span.end(&[
            ("subnet", Value::U64(subnet as u64)),
            ("epoch", Value::U64(epoch as u64)),
            ("batches", Value::U64(batches as u64)),
            ("loss", Value::F64(f64::from(mean))),
            ("lr", Value::F64(f64::from(lr))),
        ]);
    }
    run_span.end(&[
        ("subnet", Value::U64(subnet as u64)),
        ("epochs", Value::U64(opts.epochs as u64)),
        (
            "final_loss",
            Value::F64(f64::from(epoch_losses.last().copied().unwrap_or(0.0))),
        ),
    ]);
    Ok(epoch_losses)
}

/// Softmax class probabilities of `subnet` on a batch, in inference mode —
/// the teacher-side computation of knowledge distillation.
///
/// # Errors
///
/// Propagates forward errors.
pub fn subnet_probs(net: &mut SteppingNet, x: &Tensor, subnet: usize) -> Result<Tensor> {
    let logits = net.forward(x, subnet, false)?;
    Ok(reduce::softmax_rows(&logits)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SteppingNetBuilder;
    use stepping_data::{GaussianBlobs, GaussianBlobsConfig};
    use stepping_tensor::Shape;

    fn blob_data() -> GaussianBlobs {
        GaussianBlobs::new(
            GaussianBlobsConfig {
                classes: 3,
                features: 8,
                train_per_class: 30,
                test_per_class: 10,
                separation: 3.0,
                noise_std: 0.5,
            },
            7,
        )
        .unwrap()
    }

    fn mlp(subnets: usize) -> crate::SteppingNet {
        SteppingNetBuilder::new(Shape::of(&[8]), subnets, 3)
            .linear(16)
            .relu()
            .linear(12)
            .relu()
            .build(3)
            .unwrap()
    }

    #[test]
    fn training_reduces_loss() {
        let data = blob_data();
        let mut net = mlp(2);
        let losses = train_subnet(
            &mut net,
            &data,
            0,
            &TrainOptions {
                epochs: 6,
                lr: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(losses.last().unwrap() < &losses[0], "losses {losses:?}");
    }

    #[test]
    fn training_is_reproducible() {
        let data = blob_data();
        let mut a = mlp(2);
        let mut b = mlp(2);
        let la = train_subnet(&mut a, &data, 0, &TrainOptions::default()).unwrap();
        let lb = train_subnet(&mut b, &data, 0, &TrainOptions::default()).unwrap();
        assert_eq!(la, lb);
    }

    #[test]
    fn rejects_bad_options() {
        let data = blob_data();
        let mut net = mlp(2);
        assert!(train_subnet(&mut net, &data, 9, &TrainOptions::default()).is_err());
        assert!(train_subnet(
            &mut net,
            &data,
            0,
            &TrainOptions {
                batch_size: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn subnet_probs_are_normalised() {
        let data = blob_data();
        let mut net = mlp(2);
        let (x, _) = data.batch(Split::Train, &[0, 1]).unwrap();
        let p = subnet_probs(&mut net, &x, 0).unwrap();
        for b in 0..2 {
            let s: f32 = p.row(b).unwrap().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }
}
