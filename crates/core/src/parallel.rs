//! Deterministic data-parallel training driver built on `stepping-exec`.
//!
//! [`ParallelRunner`] owns a persistent [`ExecPool`] and runs the
//! zero-grad → forward → loss → backward section of one training batch,
//! sharded across replica networks:
//!
//! 1. the batch is cut into the **canonical shards** of
//!    [`ParallelConfig::shard_ranges`] (a pure function of the row count —
//!    never of the thread count);
//! 2. each shard job clones the master network, runs forward/backward on its
//!    rows only, and exports its gradient ([`SteppingNet::export_grads`]) and
//!    importance contribution;
//! 3. shard results — always presented in shard-index order — are merged with
//!    the fixed-order pairwise [`tree_reduce`], and the merged gradient is
//!    imported back into the master.
//!
//! Because every shard's computation depends only on (master weights, shard
//! rows) and the merge order is a pure function of the shard count, the
//! accumulated gradient — and every weight after the caller's optimizer
//! step — is bit-identical (`f32 ==`) for *any* thread count. See
//! `docs/PARALLELISM.md` for the full argument and the places where the
//! sharded semantics intentionally differ from the legacy whole-batch path.
//!
//! Two degeneracies guarantee backwards compatibility:
//!
//! * a single-shard batch (the [`ParallelConfig::default`] geometry, a tiny
//!   batch under `min_rows`, or `shard_rows == 0`) runs the exact legacy
//!   inline path on the master net — no clone, no scaling, bitwise identical
//!   to the pre-engine trainers;
//! * a network that is not shard-decomposable in training mode (batch norm's
//!   batch statistics, dropout's RNG stream — see
//!   [`SteppingNet::train_parallel_safe`]) always falls back to that same
//!   single-shard path, which keeps the thread-count-invariance property
//!   even for those architectures.

use std::sync::Arc;

use stepping_exec::reduce::tree_reduce_ops;
use stepping_exec::{tree_reduce, ExecPool, Job, ParallelConfig};
use stepping_nn::loss;
use stepping_tensor::{GradStore, Tensor};

use crate::telemetry::{self, Value};
use crate::{Result, SteppingError, SteppingNet};

/// Which loss drives one training batch.
#[derive(Debug, Clone, Copy)]
pub enum BatchLoss<'a> {
    /// Plain cross-entropy against integer targets.
    CrossEntropy,
    /// Knowledge distillation (paper eq. 4): `γ·CE + (1−γ)·KL(teacher ‖ s)`.
    Distill {
        /// Teacher softmax probabilities for the whole batch, `[n, classes]`.
        teacher_probs: &'a Tensor,
        /// Cross-entropy weight `γ`.
        gamma: f32,
    },
}

/// What one [`ParallelRunner::train_batch`] call produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchOutcome {
    /// The batch training loss (mean over the batch, merged across shards in
    /// fixed tree order).
    pub loss: f32,
    /// The cross-entropy component, when requested (`want_ce`); for
    /// [`BatchLoss::CrossEntropy`] this equals `loss`.
    pub ce: Option<f32>,
}

/// Everything a shard job sends back for merging.
struct ShardOut {
    grads: GradStore,
    importance: Vec<Vec<f64>>,
    loss: f32,
    ce: f32,
}

/// A persistent deterministic data-parallel training driver.
///
/// Create one per training run (the worker pool is reused across batches) and
/// call [`ParallelRunner::train_batch`] where the trainer previously ran
/// zero-grad / forward / loss / backward inline. The optimizer step stays
/// with the caller, on the master network.
#[derive(Debug)]
pub struct ParallelRunner {
    pool: ExecPool,
    config: ParallelConfig,
    phase: &'static str,
}

impl ParallelRunner {
    /// Builds a runner (spawning `config.threads` persistent workers) that
    /// tags its telemetry with `phase` (`"training"` or `"construction"`).
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::BadConfig`] for an invalid configuration.
    pub fn new(config: ParallelConfig, phase: &'static str) -> Result<Self> {
        config.validate().map_err(SteppingError::BadConfig)?;
        let pool = ExecPool::new(config.threads);
        if telemetry::enabled() {
            telemetry::point(
                phase,
                "pool.spawn",
                &[
                    ("threads", Value::U64(pool.threads() as u64)),
                    ("shard_rows", Value::U64(config.shard_rows as u64)),
                    ("min_rows", Value::U64(config.min_rows as u64)),
                ],
            );
        }
        Ok(ParallelRunner {
            pool,
            config,
            phase,
        })
    }

    /// The configuration this runner shards with.
    pub fn config(&self) -> ParallelConfig {
        self.config
    }

    /// The underlying worker pool (shared with evaluation helpers).
    pub fn pool(&self) -> &ExecPool {
        &self.pool
    }

    /// Runs the gradient-accumulation section of one training batch:
    /// zero-grad, forward (training mode), loss, backward. On return the
    /// master `net` holds the merged gradients (and merged importance
    /// contributions) exactly as if the canonical shard decomposition had
    /// been computed on one thread; the caller performs the optimizer step.
    ///
    /// `want_ce` additionally reports the cross-entropy component (used by
    /// distillation telemetry); it costs an extra loss evaluation per shard
    /// for [`BatchLoss::Distill`].
    ///
    /// # Errors
    ///
    /// Propagates forward/backward/loss errors from any shard and surfaces
    /// worker panics as [`SteppingError::Worker`].
    pub fn train_batch(
        &self,
        net: &mut SteppingNet,
        x: &Tensor,
        y: &[usize],
        subnet: usize,
        batch_loss: BatchLoss<'_>,
        want_ce: bool,
    ) -> Result<BatchOutcome> {
        let rows = x.shape().dims().first().copied().unwrap_or(0);
        if rows != y.len() {
            return Err(SteppingError::BadConfig(format!(
                "batch has {rows} rows but {} targets",
                y.len()
            )));
        }
        let ranges = self.config.shard_ranges(rows);
        if ranges.len() <= 1 {
            return inline_batch(net, x, y, subnet, batch_loss, want_ce);
        }
        if !net.train_parallel_safe() {
            telemetry::counter(
                self.phase,
                "pool.fallback",
                1,
                &[("reason", Value::Str("shard-unsafe stage"))],
            );
            return inline_batch(net, x, y, subnet, batch_loss, want_ce);
        }
        let shards = ranges.len();
        let spawn_span = telemetry::span(self.phase, "pool.spawn");
        let master = Arc::new(net.clone());
        let inv_rows = 1.0f32 / rows as f32;
        let phase = self.phase;
        let mut jobs: Vec<Job<Result<ShardOut>>> = Vec::with_capacity(shards);
        for r in &ranges {
            let xs = x.slice_outer(r.start, r.end)?;
            let ys = y[r.clone()].to_vec();
            let shard_loss = match batch_loss {
                BatchLoss::CrossEntropy => None,
                BatchLoss::Distill {
                    teacher_probs,
                    gamma,
                } => Some((teacher_probs.slice_outer(r.start, r.end)?, gamma)),
            };
            let m = Arc::clone(&master);
            telemetry::counter(
                phase,
                "pool.shard.rows",
                (r.end - r.start) as u64,
                &[("subnet", Value::U64(subnet as u64))],
            );
            jobs.push(Box::new(move || -> Result<ShardOut> {
                let shard_span = telemetry::span(phase, "pool.shard");
                let m_s = xs.shape().dims()[0];
                let weight = m_s as f32 * inv_rows;
                let mut replica = (*m).clone();
                replica.zero_grad();
                replica.reset_importance();
                let logits = replica.forward(&xs, subnet, true)?;
                let ce = if want_ce {
                    let (c, _) = loss::cross_entropy(&logits, &ys).map_err(SteppingError::Nn)?;
                    c * weight
                } else {
                    0.0
                };
                let (l, mut dlogits) = match &shard_loss {
                    None => loss::cross_entropy(&logits, &ys).map_err(SteppingError::Nn)?,
                    Some((tp, gamma)) => {
                        loss::distillation(&logits, tp, &ys, *gamma).map_err(SteppingError::Nn)?
                    }
                };
                // Per-shard losses divide by the shard row count; rescale so
                // the merged gradient/loss is the batch mean.
                dlogits.scale(weight);
                replica.backward(&dlogits)?;
                let out = ShardOut {
                    grads: replica.export_grads(subnet)?,
                    importance: replica.export_importance(),
                    loss: l * weight,
                    ce,
                };
                shard_span.end(&[("rows", Value::U64(m_s as u64))]);
                Ok(out)
            }));
        }
        let results = self.pool.run(jobs)?;
        spawn_span.end(&[
            ("shards", Value::U64(shards as u64)),
            ("rows", Value::U64(rows as u64)),
            ("subnet", Value::U64(subnet as u64)),
        ]);
        let outs: Vec<ShardOut> = results.into_iter().collect::<Result<Vec<_>>>()?;

        let reduce_span = telemetry::span(self.phase, "pool.reduce");
        let mut merge_err: Option<SteppingError> = None;
        let merged = tree_reduce(outs, |a, b| {
            if merge_err.is_none() {
                if let Err(e) = a.grads.add_assign(&b.grads) {
                    merge_err = Some(e.into());
                    return;
                }
                for (ai, bi) in a.importance.iter_mut().zip(b.importance) {
                    for (av, bv) in ai.iter_mut().zip(bi) {
                        *av += bv;
                    }
                }
                a.loss += b.loss;
                a.ce += b.ce;
            }
        })
        .ok_or_else(|| SteppingError::Worker("no shard results to merge".into()))?;
        if let Some(e) = merge_err {
            return Err(e);
        }
        telemetry::counter(
            self.phase,
            "pool.reduce.ops",
            tree_reduce_ops(shards),
            &[("shards", Value::U64(shards as u64))],
        );

        net.zero_grad();
        net.import_grads(subnet, &merged.grads)?;
        net.add_importance(&merged.importance)?;
        reduce_span.end(&[
            ("shards", Value::U64(shards as u64)),
            ("grad_slots", Value::U64(merged.grads.len() as u64)),
        ]);
        Ok(BatchOutcome {
            loss: merged.loss,
            ce: want_ce.then_some(merged.ce),
        })
    }
}

/// The exact legacy single-threaded batch section, run on the master net.
fn inline_batch(
    net: &mut SteppingNet,
    x: &Tensor,
    y: &[usize],
    subnet: usize,
    batch_loss: BatchLoss<'_>,
    want_ce: bool,
) -> Result<BatchOutcome> {
    net.zero_grad();
    let logits = net.forward(x, subnet, true)?;
    match batch_loss {
        BatchLoss::CrossEntropy => {
            let (l, dlogits) = loss::cross_entropy(&logits, y).map_err(SteppingError::Nn)?;
            net.backward(&dlogits)?;
            Ok(BatchOutcome {
                loss: l,
                ce: want_ce.then_some(l),
            })
        }
        BatchLoss::Distill {
            teacher_probs,
            gamma,
        } => {
            let ce = if want_ce {
                let (c, _) = loss::cross_entropy(&logits, y).map_err(SteppingError::Nn)?;
                Some(c)
            } else {
                None
            };
            let (l, dlogits) =
                loss::distillation(&logits, teacher_probs, y, gamma).map_err(SteppingError::Nn)?;
            net.backward(&dlogits)?;
            Ok(BatchOutcome { loss: l, ce })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SteppingNetBuilder;
    use stepping_data::{Dataset, GaussianBlobs, GaussianBlobsConfig, Split};
    use stepping_nn::optim::Sgd;
    use stepping_tensor::Shape;

    fn data() -> GaussianBlobs {
        GaussianBlobs::new(
            GaussianBlobsConfig {
                classes: 3,
                features: 8,
                train_per_class: 20,
                test_per_class: 5,
                separation: 3.0,
                noise_std: 0.5,
            },
            13,
        )
        .unwrap()
    }

    fn mlp() -> SteppingNet {
        SteppingNetBuilder::new(Shape::of(&[8]), 2, 3)
            .linear(16)
            .relu()
            .linear(12)
            .relu()
            .build(3)
            .unwrap()
    }

    fn grads_of(net: &mut SteppingNet, subnet: usize) -> GradStore {
        net.export_grads(subnet).unwrap()
    }

    #[test]
    fn sequential_config_matches_legacy_inline_path() {
        let d = data();
        let (x, y) = d.batch(Split::Train, &(0..24).collect::<Vec<_>>()).unwrap();
        let mut a = mlp();
        let mut b = mlp();
        let runner = ParallelRunner::new(ParallelConfig::sequential(), "training").unwrap();
        let out = runner
            .train_batch(&mut a, &x, &y, 0, BatchLoss::CrossEntropy, false)
            .unwrap();
        // legacy path by hand
        b.zero_grad();
        let logits = b.forward(&x, 0, true).unwrap();
        let (l, dlogits) = loss::cross_entropy(&logits, &y).unwrap();
        b.backward(&dlogits).unwrap();
        assert_eq!(out.loss.to_bits(), l.to_bits());
        assert_eq!(grads_of(&mut a, 0), grads_of(&mut b, 0));
    }

    #[test]
    fn sharded_training_is_thread_count_invariant() {
        let d = data();
        let (x, y) = d.batch(Split::Train, &(0..20).collect::<Vec<_>>()).unwrap();
        let mut reference: Option<(GradStore, f32)> = None;
        for threads in [1usize, 2, 3, 8] {
            let mut net = mlp();
            let cfg = ParallelConfig {
                threads,
                shard_rows: 6,
                min_rows: 0,
            };
            let runner = ParallelRunner::new(cfg, "training").unwrap();
            let out = runner
                .train_batch(&mut net, &x, &y, 0, BatchLoss::CrossEntropy, false)
                .unwrap();
            let g = grads_of(&mut net, 0);
            match &reference {
                None => reference = Some((g, out.loss)),
                Some((rg, rl)) => {
                    assert_eq!(&g, rg, "threads {threads}");
                    assert_eq!(out.loss.to_bits(), rl.to_bits(), "threads {threads}");
                }
            }
        }
    }

    #[test]
    fn post_step_weights_are_thread_count_invariant() {
        let d = data();
        let (x, y) = d.batch(Split::Train, &(0..20).collect::<Vec<_>>()).unwrap();
        let weights = |net: &mut SteppingNet| -> Vec<Vec<f32>> {
            net.params_for(0)
                .unwrap()
                .iter()
                .map(|p| p.value.data().to_vec())
                .collect()
        };
        let mut reference: Option<Vec<Vec<f32>>> = None;
        for threads in [1usize, 4] {
            let mut net = mlp();
            let cfg = ParallelConfig {
                threads,
                shard_rows: 8,
                min_rows: 0,
            };
            let runner = ParallelRunner::new(cfg, "training").unwrap();
            runner
                .train_batch(&mut net, &x, &y, 0, BatchLoss::CrossEntropy, false)
                .unwrap();
            let mut sgd = Sgd::new(0.05).unwrap();
            sgd.step(&mut net.params_for(0).unwrap()).unwrap();
            let w = weights(&mut net);
            match &reference {
                None => reference = Some(w),
                Some(rw) => assert_eq!(&w, rw, "threads {threads}"),
            }
        }
    }

    #[test]
    fn tiny_batches_fall_back_to_single_shard() {
        let d = data();
        let (x, y) = d.batch(Split::Train, &[0, 1, 2]).unwrap();
        let cfg = ParallelConfig {
            threads: 4,
            shard_rows: 2,
            min_rows: 16,
        };
        let runner = ParallelRunner::new(cfg, "training").unwrap();
        let mut a = mlp();
        runner
            .train_batch(&mut a, &x, &y, 0, BatchLoss::CrossEntropy, false)
            .unwrap();
        let mut b = mlp();
        let seq = ParallelRunner::new(ParallelConfig::sequential(), "training").unwrap();
        seq.train_batch(&mut b, &x, &y, 0, BatchLoss::CrossEntropy, false)
            .unwrap();
        assert_eq!(grads_of(&mut a, 0), grads_of(&mut b, 0));
    }

    #[test]
    fn distill_loss_reports_ce_component() {
        let d = data();
        let (x, y) = d.batch(Split::Train, &(0..16).collect::<Vec<_>>()).unwrap();
        let mut teacher = mlp();
        let t_logits = teacher.forward(&x, 0, false).unwrap();
        let tp = stepping_tensor::reduce::softmax_rows(&t_logits).unwrap();
        let cfg = ParallelConfig {
            threads: 2,
            shard_rows: 4,
            min_rows: 0,
        };
        let runner = ParallelRunner::new(cfg, "training").unwrap();
        let mut net = mlp();
        let out = runner
            .train_batch(
                &mut net,
                &x,
                &y,
                0,
                BatchLoss::Distill {
                    teacher_probs: &tp,
                    gamma: 0.4,
                },
                true,
            )
            .unwrap();
        let ce = out.ce.expect("ce requested");
        assert!(ce.is_finite() && out.loss.is_finite());
    }

    #[test]
    fn rejects_mismatched_targets_and_zero_threads() {
        let d = data();
        let (x, y) = d.batch(Split::Train, &[0, 1, 2, 3]).unwrap();
        let runner = ParallelRunner::new(ParallelConfig::sequential(), "training").unwrap();
        let mut net = mlp();
        assert!(runner
            .train_batch(&mut net, &x, &y[..3], 0, BatchLoss::CrossEntropy, false)
            .is_err());
        assert!(ParallelRunner::new(
            ParallelConfig {
                threads: 0,
                shard_rows: 8,
                min_rows: 0
            },
            "training"
        )
        .is_err());
    }
}
