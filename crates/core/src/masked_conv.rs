use rand::rngs::StdRng;
use stepping_nn::{Param, ParamLr};
use stepping_tensor::conv::{col2im, im2col, ConvGeometry};
use stepping_tensor::microkernel::{Epilogue, PackedB};
use stepping_tensor::pack::{self, PackScratch};
use stepping_tensor::{init, matmul, Shape, Tensor};

use crate::plan::{self, ConvPlan, FusedAct, PlanSet};
use crate::{Assignment, Result, SteppingError};

/// A 2-D convolution whose filters (output channels) carry subnet
/// assignments — the CNN building block of a SteppingNet.
///
/// The structural rules mirror [`MaskedLinear`](crate::MaskedLinear) at
/// *filter* granularity: filter `oc` may read input channel `ic` only when
/// `assign(ic) ≤ assign(oc)`, so channels of smaller subnets are never
/// invalidated by larger-subnet channels. Unstructured pruning additionally
/// zeroes individual kernel weights (paper §III-A1 applies pruning \[14\]
/// inside each iteration).
#[derive(Debug, Clone)]
pub struct MaskedConv2d {
    weight: Param,
    bias: Param,
    kernel: usize,
    stride: usize,
    padding: usize,
    in_assign: Assignment,
    out_assign: Assignment,
    /// Spatial output positions per image (`out_h · out_w`) for MAC
    /// accounting; fixed at build time from the model's input geometry.
    positions: usize,
    /// Accumulated `|∂L_k/∂r_j^k|`, flattened `[subnet][out_channel]`.
    importance: Vec<f64>,
    cached: Option<CachedForward>,
    /// Compiled packed panels per subnet, dropped whenever weights or
    /// assignments change (see [`crate::plan`]).
    plans: PlanSet<ConvPlan>,
    /// Reusable im2col/GEMM buffers for the packed path.
    scratch: PackScratch,
}

#[derive(Debug, Clone)]
struct CachedForward {
    cols: Tensor,
    z: Tensor,
    geom: ConvGeometry,
    batch: usize,
    subnet: usize,
}

impl MaskedConv2d {
    /// Creates a masked convolution; all filters start in subnet 0.
    ///
    /// `positions` is the number of output spatial positions per image at
    /// this layer's place in the model (for MAC accounting).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        positions: usize,
        subnets: usize,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight = Param::new(init::kaiming(
            Shape::of(&[out_channels, in_channels, kernel, kernel]),
            fan_in,
            rng,
        ));
        let bias = Param::new(Tensor::zeros(Shape::of(&[out_channels])));
        MaskedConv2d {
            weight,
            bias,
            kernel,
            stride,
            padding,
            in_assign: Assignment::new(in_channels, subnets),
            out_assign: Assignment::new(out_channels, subnets),
            positions,
            importance: vec![0.0; subnets * out_channels],
            cached: None,
            plans: PlanSet::default(),
            scratch: PackScratch::new(),
        }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_assign.len()
    }

    /// Output filter count.
    pub fn out_channels(&self) -> usize {
        self.out_assign.len()
    }

    /// Square kernel extent.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Number of subnets.
    pub fn subnet_count(&self) -> usize {
        self.out_assign.subnet_count()
    }

    /// Output spatial positions per image used for MAC accounting.
    pub fn positions(&self) -> usize {
        self.positions
    }

    /// Assignment of the layer's filters.
    pub fn out_assign(&self) -> &Assignment {
        &self.out_assign
    }

    /// Assignment of the input channels.
    pub fn in_assign(&self) -> &Assignment {
        &self.in_assign
    }

    /// Replaces the input-channel assignment (called by the network when
    /// upstream filters move).
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::InvalidStructure`] on geometry mismatch.
    pub fn set_in_assign(&mut self, assign: Assignment) -> Result<()> {
        if assign.len() != self.in_channels() || assign.subnet_count() != self.subnet_count() {
            return Err(SteppingError::InvalidStructure(format!(
                "in-assignment of {} channels / {} subnets does not fit conv with {} inputs / {} subnets",
                assign.len(),
                assign.subnet_count(),
                self.in_channels(),
                self.subnet_count()
            )));
        }
        self.in_assign = assign;
        self.plans.invalidate("conv");
        Ok(())
    }

    /// Moves filter `oc` to `target` subnet (or the unused pool).
    ///
    /// # Errors
    ///
    /// Propagates [`Assignment::move_neuron`] errors.
    pub fn move_out_neuron(&mut self, oc: usize, target: usize) -> Result<()> {
        self.out_assign.move_neuron(oc, target)?;
        self.plans.invalidate("conv");
        Ok(())
    }

    /// Read access to the weight parameter (`[out, in, k, k]`).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter. Handing out the borrow
    /// conservatively invalidates compiled plans — the caller may rewrite
    /// weight values.
    pub fn weight_mut(&mut self) -> &mut Param {
        self.plans.invalidate("conv");
        &mut self.weight
    }

    /// Read access to the bias parameter.
    pub fn bias(&self) -> &Param {
        &self.bias
    }

    fn patch_len(&self) -> usize {
        self.in_channels() * self.kernel * self.kernel
    }

    /// Flattened `[out, patch]` weight with illegal channel pairs and
    /// inactive filters zeroed.
    fn effective_weight_flat(&self, subnet: usize) -> Result<Tensor> {
        let (oc_n, ic_n, kk) = (
            self.out_channels(),
            self.in_channels(),
            self.kernel * self.kernel,
        );
        let mut w = self
            .weight
            .value
            .reshape(Shape::of(&[oc_n, self.patch_len()]))?;
        let wd = w.data_mut();
        for oc in 0..oc_n {
            let active = self.out_assign.is_active(oc, subnet);
            let oa = self.out_assign.subnet_of(oc);
            for ic in 0..ic_n {
                if !active || self.in_assign.subnet_of(ic) > oa {
                    for e in 0..kk {
                        wd[oc * self.patch_len() + ic * kk + e] = 0.0;
                    }
                }
            }
        }
        Ok(w)
    }

    fn geometry(&self, in_h: usize, in_w: usize) -> Result<ConvGeometry> {
        Ok(ConvGeometry::new(
            self.in_channels(),
            in_h,
            in_w,
            self.kernel,
            self.kernel,
            self.stride,
            self.padding,
        )?)
    }

    /// Forward pass for `subnet`; inactive filters produce exactly 0.
    ///
    /// # Errors
    ///
    /// Returns structural errors for a bad subnet index or input shape.
    pub fn forward(&mut self, input: &Tensor, subnet: usize, train: bool) -> Result<Tensor> {
        self.check_subnet(subnet)?;
        let dims = input.shape().dims();
        if dims.len() != 4 || dims[1] != self.in_channels() {
            return Err(SteppingError::InvalidStructure(format!(
                "masked conv expects [n, {}, h, w], got {}",
                self.in_channels(),
                input.shape()
            )));
        }
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let geom = self.geometry(h, w)?;
        let cols = im2col(input, &geom)?;
        let w_eff = self.effective_weight_flat(subnet)?;
        let mut z_mat = matmul::matmul_bt(&cols, &w_eff)?;
        let oc_n = self.out_channels();
        {
            // bias only on active filters → inactive channels exactly zero
            let zd = z_mat.data_mut();
            let rows = n * geom.positions();
            for oc in 0..oc_n {
                if self.out_assign.is_active(oc, subnet) {
                    let b = self.bias.value.data()[oc];
                    for r in 0..rows {
                        zd[r * oc_n + oc] += b;
                    }
                }
            }
        }
        let z = crate::layout::mat_to_nchw(&z_mat, n, oc_n, geom.out_h, geom.out_w);
        if train {
            self.cached = Some(CachedForward {
                cols,
                z: z.clone(),
                geom,
                batch: n,
                subnet,
            });
        } else {
            // Inference never backpropagates: skip the clone and drop any
            // stale cache so a later `backward` fails loudly instead of
            // silently using old activations.
            self.cached = None;
        }
        Ok(z)
    }

    /// Packed forward pass for `subnet`: computes the same result as
    /// [`MaskedConv2d::forward`] (equal under `f32 ==`; see
    /// [`crate::plan`]) but unfolds only the active input channels and runs
    /// a dense GEMM over only the active filter panel, compiled on demand
    /// and cached until the next weight or assignment change.
    /// Inference-only: the backward cache is not populated.
    ///
    /// # Errors
    ///
    /// Returns structural errors for a bad subnet index or input shape.
    pub fn forward_packed(&mut self, input: &Tensor, subnet: usize) -> Result<Tensor> {
        self.forward_packed_fused(input, subnet, FusedAct::None)
    }

    /// [`MaskedConv2d::forward_packed`] with bias — and optionally a
    /// zero-preserving activation — fused into the blocked GEMM epilogue:
    /// one im2col→GEMM→bias(+act)→scatter pass over the plan scratch. With
    /// `FusedAct::Relu`/`Tanh` the result equals masked conv followed by
    /// the activation layer under `f32 ==` (inactive channels stay `0.0`,
    /// and `act(0) == 0`).
    pub(crate) fn forward_packed_fused(
        &mut self,
        input: &Tensor,
        subnet: usize,
        act: FusedAct,
    ) -> Result<Tensor> {
        self.check_subnet(subnet)?;
        let dims = input.shape().dims();
        if dims.len() != 4 || dims[1] != self.in_channels() {
            return Err(SteppingError::InvalidStructure(format!(
                "masked conv expects [n, {}, h, w], got {}",
                self.in_channels(),
                input.shape()
            )));
        }
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let geom = self.geometry(h, w)?;
        let positions = geom.positions();
        let oc_n = self.out_channels();
        self.ensure_full_plan(subnet);
        let plan = self
            .plans
            .full(subnet)
            .ok_or_else(|| plan::missing("conv"))?;
        {
            let _pack_timer = plan::pack_timer();
            pack::im2col_channels_into(input, &geom, &plan.ic_idx, &mut self.scratch.input)?;
        }
        {
            let _gemm_timer = plan::gemm_timer();
            pack::gemm_packed_nt_into(
                &self.scratch.input,
                &plan.weight,
                &mut self.scratch.out,
                n * positions,
                &mut self.scratch.a_pack,
                act.epilogue(&plan.bias),
            );
        }
        let mut z = Tensor::zeros(Shape::of(&[n, oc_n, geom.out_h, geom.out_w]));
        pack::scatter_mat_to_nchw(
            &self.scratch.out,
            n,
            positions,
            &plan.oc_idx,
            oc_n,
            z.data_mut(),
        );
        Ok(z)
    }

    /// Packed equivalent of [`MaskedConv2d::forward_channels`] for the
    /// filters assigned exactly to subnet `k` (the incremental expand
    /// step). Returns `[n, members(k).len(), oh, ow]`, channel order
    /// matching `out_assign().members(k)`.
    ///
    /// # Errors
    ///
    /// Returns structural errors for a bad subnet index or input shape.
    pub fn forward_step_packed(&mut self, input: &Tensor, k: usize) -> Result<Tensor> {
        self.check_subnet(k)?;
        let dims = input.shape().dims();
        if dims.len() != 4 || dims[1] != self.in_channels() {
            return Err(SteppingError::InvalidStructure(format!(
                "masked conv expects [n, {}, h, w], got {}",
                self.in_channels(),
                input.shape()
            )));
        }
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let geom = self.geometry(h, w)?;
        let positions = geom.positions();
        self.ensure_step_plan(k);
        let plan = self.plans.step(k).ok_or_else(|| plan::missing("conv"))?;
        let oc_len = plan.oc_idx.len();
        let mut out = Tensor::zeros(Shape::of(&[n, oc_len, geom.out_h, geom.out_w]));
        if oc_len == 0 {
            return Ok(out);
        }
        {
            let _pack_timer = plan::pack_timer();
            pack::im2col_channels_into(input, &geom, &plan.ic_idx, &mut self.scratch.input)?;
        }
        {
            let _gemm_timer = plan::gemm_timer();
            pack::gemm_packed_nt_into(
                &self.scratch.input,
                &plan.weight,
                &mut self.scratch.out,
                n * positions,
                &mut self.scratch.a_pack,
                Epilogue::Bias(&plan.bias),
            );
        }
        let dense: Vec<usize> = (0..oc_len).collect();
        pack::scatter_mat_to_nchw(
            &self.scratch.out,
            n,
            positions,
            &dense,
            oc_len,
            out.data_mut(),
        );
        Ok(out)
    }

    /// Fused expand step: computes the subnet-`k` step channels (exactly as
    /// [`MaskedConv2d::forward_step_packed`]) and scatters them straight
    /// into the matching channels of `target` (`[n, out_channels, oh, ow]`,
    /// typically a cached full-width activation) — one
    /// im2col→GEMM→bias→scatter pass with no intermediate tensor. Untouched
    /// channels of `target` keep their exact old values.
    ///
    /// # Errors
    ///
    /// Returns an error for a subnet index out of range or input/target of
    /// the wrong shape.
    pub(crate) fn forward_step_packed_into(
        &mut self,
        input: &Tensor,
        k: usize,
        target: &mut Tensor,
    ) -> Result<()> {
        self.check_subnet(k)?;
        let dims = input.shape().dims();
        if dims.len() != 4 || dims[1] != self.in_channels() {
            return Err(SteppingError::InvalidStructure(format!(
                "masked conv expects [n, {}, h, w], got {}",
                self.in_channels(),
                input.shape()
            )));
        }
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let geom = self.geometry(h, w)?;
        let positions = geom.positions();
        let oc_n = self.out_channels();
        if target.shape().dims() != [n, oc_n, geom.out_h, geom.out_w] {
            return Err(SteppingError::InvalidStructure(format!(
                "step splice target expects [{n}, {oc_n}, {}, {}], got {}",
                geom.out_h,
                geom.out_w,
                target.shape()
            )));
        }
        self.ensure_step_plan(k);
        let plan = self.plans.step(k).ok_or_else(|| plan::missing("conv"))?;
        if plan.oc_idx.is_empty() {
            return Ok(());
        }
        {
            let _pack_timer = plan::pack_timer();
            pack::im2col_channels_into(input, &geom, &plan.ic_idx, &mut self.scratch.input)?;
        }
        {
            let _gemm_timer = plan::gemm_timer();
            pack::gemm_packed_nt_into(
                &self.scratch.input,
                &plan.weight,
                &mut self.scratch.out,
                n * positions,
                &mut self.scratch.a_pack,
                Epilogue::Bias(&plan.bias),
            );
        }
        pack::scatter_mat_to_nchw(
            &self.scratch.out,
            n,
            positions,
            &plan.oc_idx,
            oc_n,
            target.data_mut(),
        );
        Ok(())
    }

    /// Current plan-cache epoch; advances on every weight or assignment
    /// mutation. Exposed for invalidation tests and diagnostics.
    pub fn plan_epoch(&self) -> u64 {
        self.plans.epoch()
    }

    /// MAC operations the packed path actually executes for `subnet`: the
    /// dense panel extent `active_oc × active_ic × k² × positions`
    /// (pruned-but-legal entries still occupy panel slots).
    pub fn packed_macs(&self, subnet: usize) -> u64 {
        (self.out_assign.active_count(subnet)
            * self.in_assign.active_count(subnet)
            * self.kernel
            * self.kernel
            * self.positions) as u64
    }

    /// Compiles (or confirms) the full plan for `subnet`.
    fn ensure_full_plan(&mut self, subnet: usize) {
        if self.plans.full(subnet).is_some() {
            plan::note_hit("conv", subnet);
            return;
        }
        let _compile_timer = plan::compile_timer();
        let plan = self.compile(
            self.out_assign.active_members(subnet),
            self.in_assign.active_members(subnet),
            true,
        );
        plan::note_compile("conv", subnet, plan.oc_idx.len(), plan.ic_idx.len());
        self.plans.put_full(subnet, plan);
    }

    /// Compiles (or confirms) the step plan for subnet `k` (filters
    /// assigned exactly to `k`; every active input channel at `k` is legal
    /// for them).
    fn ensure_step_plan(&mut self, k: usize) {
        if self.plans.step(k).is_some() {
            plan::note_hit("conv", k);
            return;
        }
        let _compile_timer = plan::compile_timer();
        let plan = self.compile(
            self.out_assign.members(k),
            self.in_assign.active_members(k),
            false,
        );
        plan::note_compile("conv", k, plan.oc_idx.len(), plan.ic_idx.len());
        self.plans.put_step(k, plan);
    }

    fn compile(&self, oc_idx: Vec<usize>, ic_idx: Vec<usize>, mask_rows: bool) -> ConvPlan {
        let kk = self.kernel * self.kernel;
        let patch = self.patch_len();
        let wd = self.weight.value.data();
        let mut weight = vec![0.0f32; oc_idx.len() * ic_idx.len() * kk];
        for (r, &oc) in oc_idx.iter().enumerate() {
            let oa = self.out_assign.subnet_of(oc);
            for (ci, &ic) in ic_idx.iter().enumerate() {
                // Mirror `effective_weight_flat`: channel blocks from inputs
                // of a larger subnet than this row's owner stay zero. Step
                // plans never need this (all rows own subnet `k` exactly).
                if mask_rows && self.in_assign.subnet_of(ic) > oa {
                    continue;
                }
                let src = &wd[oc * patch + ic * kk..oc * patch + (ic + 1) * kk];
                let dst_base = (r * ic_idx.len() + ci) * kk;
                weight[dst_base..dst_base + kk].copy_from_slice(src);
            }
        }
        let weight = PackedB::pack_nt(&weight, oc_idx.len(), ic_idx.len() * kk);
        let bias: Vec<f32> = oc_idx
            .iter()
            .map(|&oc| self.bias.value.data()[oc])
            .collect();
        ConvPlan {
            oc_idx,
            ic_idx,
            weight,
            bias,
        }
    }

    /// Computes only the given output `channels` against `input`, with the
    /// same arithmetic order as [`MaskedConv2d::forward`] — used by the
    /// incremental executor for newly added filters. Returns
    /// `[n, channels.len(), oh, ow]`.
    ///
    /// # Errors
    ///
    /// Returns structural errors for bad shapes or channel indices.
    pub fn forward_channels(
        &self,
        input: &Tensor,
        channels: &[usize],
        subnet: usize,
    ) -> Result<Tensor> {
        self.check_subnet(subnet)?;
        let dims = input.shape().dims();
        if dims.len() != 4 || dims[1] != self.in_channels() {
            return Err(SteppingError::InvalidStructure(format!(
                "masked conv expects [n, {}, h, w], got {}",
                self.in_channels(),
                input.shape()
            )));
        }
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let geom = self.geometry(h, w)?;
        let cols = im2col(input, &geom)?;
        let patch = self.patch_len();
        let kk = self.kernel * self.kernel;
        let positions = geom.positions();
        let mut out = Tensor::zeros(Shape::of(&[n, channels.len(), geom.out_h, geom.out_w]));
        let od = out.data_mut();
        for (ci, &oc) in channels.iter().enumerate() {
            if oc >= self.out_channels() {
                return Err(SteppingError::InvalidStructure(format!(
                    "channel {oc} out of range"
                )));
            }
            if !self.out_assign.is_active(oc, subnet) {
                continue;
            }
            let oa = self.out_assign.subnet_of(oc);
            let mut row = vec![0.0f32; patch];
            for ic in 0..self.in_channels() {
                if self.in_assign.subnet_of(ic) <= oa {
                    for e in 0..kk {
                        row[ic * kk + e] = self.weight.value.data()[oc * patch + ic * kk + e];
                    }
                }
            }
            let b = self.bias.value.data()[oc];
            for img in 0..n {
                for p in 0..positions {
                    let col_row = &cols.data()[(img * positions + p) * patch..][..patch];
                    let mut acc = 0.0f32;
                    for (cv, rv) in col_row.iter().zip(row.iter()) {
                        acc += cv * rv;
                    }
                    od[(img * channels.len() + ci) * positions + p] = acc + b;
                }
            }
        }
        Ok(out)
    }

    /// Backward pass for the subnet used in the last forward; accumulates
    /// masked gradients and per-filter importance, returns `∂L/∂x`.
    ///
    /// # Errors
    ///
    /// Returns an error when called before `forward` or with a gradient of
    /// the wrong shape.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cached = self.cached.as_ref().ok_or_else(|| {
            SteppingError::ExecutorState("masked conv backward before forward".into())
        })?;
        if grad_out.shape() != cached.z.shape() {
            return Err(SteppingError::InvalidStructure(format!(
                "masked conv backward expects {}, got {}",
                cached.z.shape(),
                grad_out.shape()
            )));
        }
        let (n, geom, subnet) = (cached.batch, cached.geom, cached.subnet);
        let oc_n = self.out_channels();
        let positions = geom.positions();
        // Importance (eq. 2) at filter granularity: |Σ_{b,positions} g·z|.
        for oc in 0..oc_n {
            if !self.out_assign.is_active(oc, subnet) {
                continue;
            }
            let mut acc = 0.0f64;
            for b in 0..n {
                let base = (b * oc_n + oc) * positions;
                for p in 0..positions {
                    acc += (grad_out.data()[base + p] * cached.z.data()[base + p]) as f64;
                }
            }
            self.importance[subnet * oc_n + oc] += acc.abs();
        }
        let grad_mat = crate::layout::nchw_to_mat(grad_out, n, oc_n, geom.out_h, geom.out_w);
        let dw_flat = matmul::matmul_at(&grad_mat, &cached.cols)?;
        // masked accumulation: only weights that participated
        {
            let kk = self.kernel * self.kernel;
            let patch = self.patch_len();
            let ic_n = self.in_channels();
            let gd = self.weight.grad.data_mut();
            for oc in 0..oc_n {
                let active = self.out_assign.is_active(oc, subnet);
                let oa = self.out_assign.subnet_of(oc);
                for ic in 0..ic_n {
                    if active && self.in_assign.subnet_of(ic) <= oa {
                        for e in 0..kk {
                            let idx = oc * patch + ic * kk + e;
                            gd[idx] += dw_flat.data()[idx];
                        }
                    }
                }
            }
        }
        let db = stepping_tensor::reduce::sum_rows(&grad_mat)?;
        {
            let bd = self.bias.grad.data_mut();
            for (oc, b) in bd.iter_mut().enumerate().take(oc_n) {
                if self.out_assign.is_active(oc, subnet) {
                    *b += db.data()[oc];
                }
            }
        }
        let w_eff = self.effective_weight_flat(subnet)?;
        let dcols = matmul::matmul(&grad_mat, &w_eff)?;
        Ok(col2im(&dcols, n, &geom)?)
    }

    /// Trainable parameters (weight then bias). Handing out the borrows
    /// invalidates compiled plans — an optimizer step will rewrite the
    /// values.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.plans.invalidate("conv");
        vec![&mut self.weight, &mut self.bias]
    }

    /// Non-permanent magnitude pruning (see
    /// [`MaskedLinear::prune`](crate::MaskedLinear::prune)).
    pub fn prune(&mut self, threshold: f32) -> usize {
        let mut pruned = 0;
        for w in self.weight.value.data_mut() {
            if *w != 0.0 && w.abs() < threshold {
                *w = 0.0;
                pruned += 1;
            }
        }
        if pruned > 0 {
            self.plans.invalidate("conv");
        }
        pruned
    }

    /// Boolean mask of currently-zeroed kernel weights (`true` = exactly
    /// zero), flattened in weight order (see
    /// [`MaskedLinear::zeroed_weights`](crate::MaskedLinear::zeroed_weights)).
    pub fn zeroed_weights(&self) -> Vec<bool> {
        self.weight.value.data().iter().map(|w| *w == 0.0).collect()
    }

    /// Counts kernel weights zero in `before` that now carry magnitude
    /// `>= threshold` (see
    /// [`MaskedLinear::count_revived`](crate::MaskedLinear::count_revived)).
    pub fn count_revived(&self, before: &[bool], threshold: f32) -> usize {
        self.weight
            .value
            .data()
            .iter()
            .zip(before.iter())
            .filter(|(w, was_zero)| **was_zero && w.abs() >= threshold)
            .count()
    }

    /// MAC operations of `subnet`: legal, unpruned kernel weights into active
    /// filters, times output positions.
    pub fn macs(&self, subnet: usize, threshold: f32) -> u64 {
        let (oc_n, ic_n, kk) = (
            self.out_channels(),
            self.in_channels(),
            self.kernel * self.kernel,
        );
        let patch = self.patch_len();
        let mut count = 0u64;
        for oc in 0..oc_n {
            if !self.out_assign.is_active(oc, subnet) {
                continue;
            }
            let oa = self.out_assign.subnet_of(oc);
            for ic in 0..ic_n {
                if self.in_assign.subnet_of(ic) > oa {
                    continue;
                }
                for e in 0..kk {
                    if self.weight.value.data()[oc * patch + ic * kk + e].abs() >= threshold {
                        count += 1;
                    }
                }
            }
        }
        count * self.positions as u64
    }

    /// MAC operations contributed by filter `oc` (incoming legal unpruned
    /// weights × positions).
    pub fn neuron_macs(&self, oc: usize, threshold: f32) -> u64 {
        let (ic_n, kk) = (self.in_channels(), self.kernel * self.kernel);
        let patch = self.patch_len();
        let oa = self.out_assign.subnet_of(oc);
        let mut count = 0u64;
        for ic in 0..ic_n {
            if self.in_assign.subnet_of(ic) > oa {
                continue;
            }
            for e in 0..kk {
                if self.weight.value.data()[oc * patch + ic * kk + e].abs() >= threshold {
                    count += 1;
                }
            }
        }
        count * self.positions as u64
    }

    /// Accumulated importance of filter `oc` w.r.t. `subnet`.
    pub fn importance(&self, subnet: usize, oc: usize) -> f64 {
        self.importance[subnet * self.out_channels() + oc]
    }

    /// Selection criterion `M_oc^i` (paper eq. 3); see
    /// [`MaskedLinear::selection_score`](crate::MaskedLinear::selection_score).
    pub fn selection_score(&self, oc: usize, alpha: &[f64]) -> f64 {
        let i = self.out_assign.subnet_of(oc);
        let n = self.subnet_count();
        if i >= n {
            return f64::INFINITY;
        }
        (i..n).map(|k| alpha[k] * self.importance(k, oc)).sum()
    }

    /// Clears accumulated importance.
    pub fn reset_importance(&mut self) {
        self.importance.fill(0.0);
    }

    /// The raw accumulated importance buffer, flattened
    /// `[subnet][out_channels]` — exported by replica workers so shard
    /// contributions can be merged.
    pub fn importance_values(&self) -> &[f64] {
        &self.importance
    }

    /// Adds a merged importance delta (same flattened layout) into this
    /// layer's accumulator.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::InvalidStructure`] on length mismatch.
    pub fn add_importance_values(&mut self, delta: &[f64]) -> Result<()> {
        if delta.len() != self.importance.len() {
            return Err(SteppingError::InvalidStructure(format!(
                "importance delta of {} entries for layer with {}",
                delta.len(),
                self.importance.len()
            )));
        }
        for (a, d) in self.importance.iter_mut().zip(delta.iter()) {
            *a += d;
        }
        Ok(())
    }

    /// Sum of |w| over filter `oc`'s legal incoming kernel weights — the
    /// naive magnitude criterion (ablation baseline; see
    /// [`MaskedLinear::magnitude_score`](crate::MaskedLinear::magnitude_score)).
    pub fn magnitude_score(&self, oc: usize) -> f64 {
        let (ic_n, kk) = (self.in_channels(), self.kernel * self.kernel);
        let patch = self.patch_len();
        let oa = self.out_assign.subnet_of(oc);
        if oa >= self.subnet_count() {
            return f64::INFINITY;
        }
        let mut acc = 0.0f64;
        for ic in 0..ic_n {
            if self.in_assign.subnet_of(ic) > oa {
                continue;
            }
            for e in 0..kk {
                acc += self.weight.value.data()[oc * patch + ic * kk + e].abs() as f64;
            }
        }
        acc
    }

    /// Installs weight-update suppression for training `subnet`
    /// (`β^(subnet − assign)` per filter; unused filters frozen).
    pub fn apply_lr_suppression(&mut self, subnet: usize, beta: f32) {
        let (oc_n, patch) = (self.out_channels(), self.patch_len());
        let mut wscale = Tensor::ones(Shape::of(&[
            oc_n,
            self.in_channels(),
            self.kernel,
            self.kernel,
        ]));
        let mut bscale = Tensor::ones(Shape::of(&[oc_n]));
        for oc in 0..oc_n {
            let a = self.out_assign.subnet_of(oc);
            let s = if a > subnet {
                0.0
            } else {
                beta.powi((subnet - a) as i32)
            };
            bscale.data_mut()[oc] = s;
            for e in 0..patch {
                wscale.data_mut()[oc * patch + e] = s;
            }
        }
        self.weight.set_lr_scale(wscale);
        self.bias.set_lr_scale(bscale);
    }

    /// Removes any learning-rate suppression.
    pub fn clear_lr_suppression(&mut self) {
        self.weight.lr = ParamLr::Uniform;
        self.bias.lr = ParamLr::Uniform;
    }

    fn check_subnet(&self, subnet: usize) -> Result<()> {
        if subnet >= self.subnet_count() {
            return Err(SteppingError::SubnetOutOfRange {
                subnet,
                count: self.subnet_count(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepping_tensor::init::rng;

    fn conv() -> MaskedConv2d {
        // 2→3 channels, 3x3 kernel, pad 1 on 4x4 input → 16 positions
        MaskedConv2d::new(2, 3, 3, 1, 1, 16, 3, &mut rng(0))
    }

    fn input() -> Tensor {
        init::uniform(Shape::of(&[2, 2, 4, 4]), -1.0, 1.0, &mut rng(1))
    }

    #[test]
    fn inactive_filters_output_exactly_zero() {
        let mut c = conv();
        c.move_out_neuron(1, 2).unwrap();
        c.bias.value.fill(0.7);
        let z = c.forward(&input(), 0, true).unwrap();
        let positions = 16;
        for b in 0..2 {
            let base = (b * 3 + 1) * positions;
            for p in 0..positions {
                assert_eq!(z.data()[base + p], 0.0);
            }
        }
    }

    #[test]
    fn shared_filter_values_identical_across_subnets() {
        let mut c = conv();
        c.move_out_neuron(2, 1).unwrap();
        let x = input();
        let z0 = c.forward(&x, 0, false).unwrap();
        let z1 = c.forward(&x, 1, false).unwrap();
        let positions = 16;
        for b in 0..2 {
            for oc in 0..2 {
                let base = (b * 3 + oc) * positions;
                for p in 0..positions {
                    assert_eq!(z0.data()[base + p], z1.data()[base + p]);
                }
            }
        }
    }

    #[test]
    fn forward_channels_matches_forward() {
        let mut c = conv();
        c.move_out_neuron(0, 1).unwrap();
        let mut ia = Assignment::new(2, 3);
        ia.move_neuron(1, 1).unwrap();
        c.set_in_assign(ia).unwrap();
        let x = input();
        let full = c.forward(&x, 1, false).unwrap();
        let part = c.forward_channels(&x, &[0, 2], 1).unwrap();
        let positions = 16;
        for b in 0..2 {
            for (ci, &oc) in [0usize, 2].iter().enumerate() {
                for p in 0..positions {
                    assert_eq!(
                        part.data()[(b * 2 + ci) * positions + p],
                        full.data()[(b * 3 + oc) * positions + p],
                    );
                }
            }
        }
    }

    #[test]
    fn gradient_masked_for_illegal_channel_pairs() {
        let mut c = conv();
        let mut ia = Assignment::new(2, 3);
        ia.move_neuron(1, 2).unwrap(); // input channel 1 in subnet 2
        c.set_in_assign(ia).unwrap();
        let x = input();
        let z = c.forward(&x, 2, true).unwrap();
        c.backward(&Tensor::ones(z.shape().clone())).unwrap();
        // filters in subnet 0 can't read input channel 1 → zero grads there
        let kk = 9;
        let patch = 2 * kk;
        for oc in 0..3 {
            for e in 0..kk {
                assert_eq!(
                    c.weight().grad.data()[oc * patch + kk + e],
                    0.0,
                    "oc {oc} e {e}"
                );
            }
            assert!(c.weight().grad.data()[oc * patch..oc * patch + kk]
                .iter()
                .any(|&g| g != 0.0));
        }
    }

    #[test]
    fn macs_scale_with_positions_and_masks() {
        let mut c = conv();
        // 3 filters × 2 channels × 9 weights × 16 positions
        assert_eq!(c.macs(0, 0.0), 3 * 2 * 9 * 16);
        c.move_out_neuron(2, 1).unwrap();
        assert_eq!(c.macs(0, 0.0), 2 * 2 * 9 * 16);
        assert_eq!(c.neuron_macs(2, 0.0), 2 * 9 * 16);
        let pruned = {
            c.weight_mut().value.data_mut()[0] = 1e-9;
            c.prune(1e-5)
        };
        assert_eq!(pruned, 1);
        assert_eq!(c.macs(1, 1e-5), (3 * 2 * 9 - 1) * 16);
    }

    #[test]
    fn importance_and_suppression() {
        let mut c = conv();
        c.move_out_neuron(1, 1).unwrap();
        let x = input();
        let z = c.forward(&x, 1, true).unwrap();
        c.backward(&Tensor::ones(z.shape().clone())).unwrap();
        assert!(c.importance(1, 0) > 0.0);
        assert_eq!(c.importance(0, 0), 0.0);
        c.apply_lr_suppression(1, 0.9);
        assert!((c.weight().lr_scale_at(0) - 0.9).abs() < 1e-6); // filter 0 in subnet 0
        let patch = 2 * 9;
        assert!((c.weight().lr_scale_at(patch) - 1.0).abs() < 1e-6); // filter 1 in subnet 1
        c.clear_lr_suppression();
        assert_eq!(c.weight().lr_scale_at(0), 1.0);
    }

    #[test]
    fn structural_validation() {
        let mut c = conv();
        assert!(c
            .forward(&Tensor::zeros(Shape::of(&[1, 3, 4, 4])), 0, true)
            .is_err());
        assert!(c
            .forward(&Tensor::zeros(Shape::of(&[1, 2, 4, 4])), 5, true)
            .is_err());
        assert!(c.set_in_assign(Assignment::new(7, 3)).is_err());
        assert!(c
            .backward(&Tensor::zeros(Shape::of(&[1, 3, 4, 4])))
            .is_err());
    }
}
