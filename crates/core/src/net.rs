use rand::rngs::StdRng;
use stepping_nn::{
    AvgPool2d, BatchNorm1d, BatchNorm2d, Dropout, Flatten, Layer, Linear, MaxPool2d, Param, Relu,
    Sigmoid, Tanh,
};
use stepping_tensor::conv::ConvGeometry;
use stepping_tensor::microkernel::{Epilogue, PackedB};
use stepping_tensor::pack::{self, PackScratch};
use stepping_tensor::{init, GradStore, Shape, Tensor};

use crate::plan::{self, FusedAct, HeadPlan, PlanSet};
use crate::{Assignment, FixedStage, MaskedConv2d, MaskedLinear, Result, Stage, SteppingError};

/// A stepping neural network: a stack of [`Stage`]s plus one lightweight
/// classifier head per subnet.
///
/// Invariants maintained by this type (checked by
/// [`SteppingNet::check_invariants`]):
///
/// * every masked stage's input assignment mirrors the nearest upstream
///   masked stage's output assignment (expanded across flatten),
/// * therefore weight legality (`assign(in) ≤ assign(out)`) implies the
///   incremental property: a neuron's value is identical in every subnet
///   containing it, and subnet `k`'s activations are reusable verbatim when
///   stepping up to `k+1`.
///
/// Heads are the one place recomputation happens on expansion (see
/// `DESIGN.md` §3.2): each subnet owns a `features → classes` linear head
/// whose input is masked to the subnet's active features; head MACs are
/// charged to the subnet.
///
/// Use [`SteppingNetBuilder`] to construct instances.
#[derive(Debug, Clone)]
pub struct SteppingNet {
    stages: Vec<Stage>,
    heads: Vec<Linear>,
    subnets: usize,
    classes: usize,
    input_shape: Shape,
    feature_assign: Assignment,
    last_subnet: Option<usize>,
    /// Route training-mode forwards of masked linear stages through their
    /// compiled packed panels (see [`SteppingNet::set_train_packed`]).
    train_packed: bool,
    /// Compiled packed head panels per subnet, dropped whenever head
    /// weights or the feature assignment change (see [`crate::plan`]).
    head_plans: PlanSet<HeadPlan>,
    /// Reusable gather buffer for the packed head path.
    head_scratch: PackScratch,
    /// Ping-pong panel buffers for the fused packed walker
    /// ([`SteppingNet::forward_packed`]).
    flow_scratch: PackScratch,
}

impl SteppingNet {
    /// Number of subnets.
    pub fn subnet_count(&self) -> usize {
        self.subnets
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Shape of one input sample (no batch dimension).
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// The stage stack.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Mutable access to the stage stack (keep invariants in mind; call
    /// [`SteppingNet::sync_assignments`] after structural edits).
    pub fn stages_mut(&mut self) -> &mut [Stage] {
        &mut self.stages
    }

    /// Indices of masked (steppable) stages.
    pub fn masked_stage_indices(&self) -> Vec<usize> {
        self.stages
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_masked())
            .map(|(i, _)| i)
            .collect()
    }

    /// Assignment of the flattened features that feed the heads.
    pub fn feature_assign(&self) -> &Assignment {
        &self.feature_assign
    }

    /// Head of `subnet`.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::SubnetOutOfRange`].
    pub fn head(&self, subnet: usize) -> Result<&Linear> {
        self.heads
            .get(subnet)
            .ok_or(SteppingError::SubnetOutOfRange {
                subnet,
                count: self.subnets,
            })
    }

    /// Mutable access to all heads (checkpoint restore; keep geometry
    /// intact). Handing out the borrow conservatively invalidates compiled
    /// head plans.
    pub fn heads_mut(&mut self) -> &mut [Linear] {
        self.head_plans.invalidate("head");
        &mut self.heads
    }

    /// Re-derives every masked stage's input assignment (and the feature
    /// assignment) from the chain of output assignments. Call after moving
    /// neurons.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::InvalidStructure`] if the chain is
    /// inconsistent with the stage geometry.
    pub fn sync_assignments(&mut self) -> Result<()> {
        let input_width = self.input_shape.dims()[0];
        let mut cur = Assignment::new(input_width, self.subnets);
        for stage in &mut self.stages {
            match stage {
                Stage::Linear(l) => {
                    l.set_in_assign(cur.clone())?;
                    cur = l.out_assign().clone();
                }
                Stage::Conv(c) => {
                    c.set_in_assign(cur.clone())?;
                    cur = c.out_assign().clone();
                }
                Stage::Fixed(FixedStage::Flatten { factor, .. }) => {
                    cur = cur.repeat_each(*factor);
                }
                s @ Stage::Fixed(
                    FixedStage::BatchNorm1d { .. } | FixedStage::BatchNorm2d { .. },
                ) => {
                    s.set_in_assign(cur.clone())?;
                }
                Stage::Fixed(_) => {}
            }
        }
        if cur.len() != self.heads[0].in_features() {
            return Err(SteppingError::InvalidStructure(format!(
                "feature assignment of {} does not match head input {}",
                cur.len(),
                self.heads[0].in_features()
            )));
        }
        self.feature_assign = cur;
        self.head_plans.invalidate("head");
        Ok(())
    }

    /// Verifies the structural invariants (nesting + head geometry); intended
    /// for tests and debug assertions.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::InvalidStructure`] describing the violation.
    pub fn check_invariants(&self) -> Result<()> {
        let input_width = self.input_shape.dims()[0];
        let mut cur = Assignment::new(input_width, self.subnets);
        for (i, stage) in self.stages.iter().enumerate() {
            match stage {
                Stage::Linear(l) => {
                    if l.in_assign() != &cur {
                        return Err(SteppingError::InvalidStructure(format!(
                            "stage {i}: stale input assignment"
                        )));
                    }
                    cur = l.out_assign().clone();
                }
                Stage::Conv(c) => {
                    if c.in_assign() != &cur {
                        return Err(SteppingError::InvalidStructure(format!(
                            "stage {i}: stale input assignment"
                        )));
                    }
                    cur = c.out_assign().clone();
                }
                Stage::Fixed(FixedStage::Flatten { factor, .. }) => {
                    cur = cur.repeat_each(*factor);
                }
                Stage::Fixed(FixedStage::BatchNorm1d { assign, .. })
                | Stage::Fixed(FixedStage::BatchNorm2d { assign, .. }) => {
                    if assign.as_ref() != Some(&cur) {
                        return Err(SteppingError::InvalidStructure(format!(
                            "stage {i}: stale batch-norm assignment"
                        )));
                    }
                }
                Stage::Fixed(_) => {}
            }
        }
        if cur != self.feature_assign {
            return Err(SteppingError::InvalidStructure(
                "stale feature assignment".into(),
            ));
        }
        Ok(())
    }

    /// Moves output neuron `neuron` of masked stage `stage` to subnet
    /// `target` and re-syncs downstream assignments.
    ///
    /// # Errors
    ///
    /// Propagates stage/assignment errors.
    pub fn move_neuron(&mut self, stage: usize, neuron: usize, target: usize) -> Result<()> {
        self.move_neurons(&[(stage, neuron, target)])
    }

    /// Moves several neurons, then re-syncs once.
    ///
    /// # Errors
    ///
    /// Propagates stage/assignment errors; assignments are re-synced even on
    /// partial failure to keep the network consistent.
    pub fn move_neurons(&mut self, moves: &[(usize, usize, usize)]) -> Result<()> {
        let mut first_err = None;
        for &(stage, neuron, target) in moves {
            let r = match self.stages.get_mut(stage) {
                Some(s) => s.move_out_neuron(neuron, target),
                None => Err(SteppingError::InvalidStructure(format!(
                    "stage {stage} out of range"
                ))),
            };
            if let Err(e) = r {
                first_err.get_or_insert(e);
            }
        }
        let sync = self.sync_assignments();
        match first_err {
            Some(e) => Err(e),
            None => sync,
        }
    }

    /// 0/1 mask of features active in `subnet`, shaped `[features]`.
    pub fn feature_mask(&self, subnet: usize) -> Tensor {
        let mut m = Tensor::zeros(Shape::of(&[self.feature_assign.len()]));
        for (i, v) in m.data_mut().iter_mut().enumerate() {
            if self.feature_assign.is_active(i, subnet) {
                *v = 1.0;
            }
        }
        m
    }

    /// Runs the feature extractor (all stages, no head) for `subnet`.
    ///
    /// # Errors
    ///
    /// Propagates stage errors; requires the final stage output to be
    /// `[n, features]`.
    pub fn features(&mut self, input: &Tensor, subnet: usize, train: bool) -> Result<Tensor> {
        if subnet >= self.subnets {
            return Err(SteppingError::SubnetOutOfRange {
                subnet,
                count: self.subnets,
            });
        }
        let mut x = input.clone();
        let packed = train && self.train_packed;
        for stage in &mut self.stages {
            x = if packed {
                stage.forward_train_packed(&x, subnet)?
            } else {
                stage.forward(&x, subnet, train)?
            };
        }
        if x.shape().rank() != 2 || x.shape().dims()[1] != self.feature_assign.len() {
            return Err(SteppingError::InvalidStructure(format!(
                "feature extractor produced {}, expected [n, {}]",
                x.shape(),
                self.feature_assign.len()
            )));
        }
        Ok(x)
    }

    /// Full forward pass: feature extractor + masked subnet head. Returns
    /// class logits `[n, classes]`.
    ///
    /// # Errors
    ///
    /// Propagates stage/head errors.
    pub fn forward(&mut self, input: &Tensor, subnet: usize, train: bool) -> Result<Tensor> {
        let feats = self.features(input, subnet, train)?;
        let logits = self.head_forward(&feats, subnet, train)?;
        self.last_subnet = Some(subnet);
        Ok(logits)
    }

    /// Applies the masked head of `subnet` to already-computed features.
    ///
    /// # Errors
    ///
    /// Propagates head errors.
    pub fn head_forward(
        &mut self,
        features: &Tensor,
        subnet: usize,
        train: bool,
    ) -> Result<Tensor> {
        if subnet >= self.subnets {
            return Err(SteppingError::SubnetOutOfRange {
                subnet,
                count: self.subnets,
            });
        }
        let mask = self.feature_mask(subnet);
        let mut masked = features.clone();
        let f = mask.len();
        let n = features.shape().dims()[0];
        for b in 0..n {
            for i in 0..f {
                masked.data_mut()[b * f + i] *= mask.data()[i];
            }
        }
        Ok(self.heads[subnet].forward(&masked, train)?)
    }

    /// Packed equivalent of [`SteppingNet::head_forward`] (inference only):
    /// gathers the features active at `subnet` and multiplies against a
    /// compiled `[classes, active]` head panel instead of masking the full
    /// feature vector. Results equal the masked path under `f32 ==` (see
    /// [`crate::plan`]).
    ///
    /// # Errors
    ///
    /// Propagates head errors and subnet-range errors.
    pub fn head_forward_packed(&mut self, features: &Tensor, subnet: usize) -> Result<Tensor> {
        if subnet >= self.subnets {
            return Err(SteppingError::SubnetOutOfRange {
                subnet,
                count: self.subnets,
            });
        }
        let f = self.feature_assign.len();
        if features.shape().rank() != 2 || features.shape().dims()[1] != f {
            return Err(SteppingError::InvalidStructure(format!(
                "head expects [n, {f}], got {}",
                features.shape()
            )));
        }
        let n = features.shape().dims()[0];
        self.ensure_head_plan(subnet);
        {
            let plan = self
                .head_plans
                .full(subnet)
                .ok_or_else(|| plan::missing("head"))?;
            let _pack_timer = plan::pack_timer();
            pack::gather_columns(
                features.data(),
                n,
                f,
                &plan.feat_idx,
                &mut self.head_scratch.input,
            );
        }
        let gathered = std::mem::take(&mut self.head_scratch.input);
        let out = self.head_forward_gathered(&gathered, n, subnet);
        self.head_scratch.input = gathered;
        out
    }

    /// Compiles (if needed) the head plan for `subnet` and reports whether
    /// a panel gathered over columns `idx` can feed
    /// [`SteppingNet::head_forward_gathered`] directly.
    fn head_panel_feeds(&mut self, subnet: usize, idx: &[usize]) -> Result<bool> {
        self.ensure_head_plan(subnet);
        let plan = self
            .head_plans
            .full(subnet)
            .ok_or_else(|| plan::missing("head"))?;
        Ok(plan.feat_idx == idx)
    }

    /// Head GEMM over features already gathered to the plan's
    /// `feat_idx` order, with the head bias fused into the epilogue.
    /// Requires the plan to be compiled (callers go through
    /// [`SteppingNet::head_forward_packed`] or
    /// [`SteppingNet::head_panel_feeds`] first).
    fn head_forward_gathered(&mut self, src: &[f32], n: usize, subnet: usize) -> Result<Tensor> {
        let plan = self
            .head_plans
            .full(subnet)
            .ok_or_else(|| plan::missing("head"))?;
        if src.len() != n * plan.feat_idx.len() {
            return Err(SteppingError::InvalidStructure(format!(
                "head panel expects [{n}, {}], got {} values",
                plan.feat_idx.len(),
                src.len()
            )));
        }
        let mut out = Tensor::zeros(Shape::of(&[n, self.classes]));
        let _gemm_timer = plan::gemm_timer();
        pack::gemm_packed_nt_slice(
            src,
            &plan.weight,
            out.data_mut(),
            n,
            &mut self.head_scratch.a_pack,
            Epilogue::Bias(self.heads[subnet].bias().value.data()),
        );
        Ok(out)
    }

    /// Full packed inference pass: every stage and the head run their
    /// compiled plans, fused into as few memory passes as possible. Equal
    /// to `forward(input, subnet, false)` under `f32 ==`; does not populate
    /// backward caches or `last_subnet`.
    ///
    /// Fusion layers on top of the per-stage packed plans:
    ///
    /// * bias — and, when the following stage is a zero-preserving
    ///   activation (`Relu`/`Tanh`), the activation itself — is applied in
    ///   the blocked-GEMM epilogue, eliding the separate full-width pass
    ///   (see [`crate::plan::FusedAct`] for why `Sigmoid` is excluded);
    /// * consecutive masked-linear stages hand their activation forward as
    ///   a gathered *panel* whenever the producing plan's output columns
    ///   equal the consuming plan's input columns, skipping the
    ///   scatter-to-full-width / re-gather round trip entirely — the head
    ///   consumes a matching panel the same way.
    ///
    /// # Errors
    ///
    /// Propagates stage/head errors.
    pub fn forward_packed(&mut self, input: &Tensor, subnet: usize) -> Result<Tensor> {
        if subnet >= self.subnets {
            return Err(SteppingError::SubnetOutOfRange {
                subnet,
                count: self.subnets,
            });
        }
        let mut cur = std::mem::take(&mut self.flow_scratch.input);
        let mut nxt = std::mem::take(&mut self.flow_scratch.out);
        let res = self.forward_packed_flow(input, subnet, &mut cur, &mut nxt);
        self.flow_scratch.input = cur;
        self.flow_scratch.out = nxt;
        res
    }

    /// The walker behind [`SteppingNet::forward_packed`]; `cur`/`nxt` are
    /// the ping-pong panel buffers (held by the caller so error paths
    /// cannot leak them).
    fn forward_packed_flow(
        &mut self,
        input: &Tensor,
        subnet: usize,
        cur: &mut Vec<f32>,
        nxt: &mut Vec<f32>,
    ) -> Result<Tensor> {
        // `flow` is the full-width activation; when `None`, the activation
        // lives in `cur` as a panel over columns `idx` of a `width`-wide
        // matrix with `n` rows.
        let mut flow: Option<Tensor> = Some(input.clone());
        let mut idx: Vec<usize> = Vec::new();
        let mut n = input.shape().dims().first().copied().unwrap_or(0);
        let mut width = 0usize;
        let mut si = 0;
        while si < self.stages.len() {
            let act = match self.stages.get(si + 1) {
                Some(Stage::Fixed(FixedStage::Relu(_))) => FusedAct::Relu,
                Some(Stage::Fixed(FixedStage::Tanh(_))) => FusedAct::Tanh,
                _ => FusedAct::None,
            };
            let fusable = self.stages[si].is_masked();
            match &mut self.stages[si] {
                Stage::Linear(l) => {
                    if flow.is_none() && !l.panel_feeds_full_plan(subnet, &idx)? {
                        let mut t = Tensor::zeros(Shape::of(&[n, width]));
                        pack::scatter_columns(cur, n, &idx, t.data_mut(), width);
                        flow = Some(t);
                    }
                    let out_idx = match &flow {
                        Some(t) => {
                            let dims = t.shape().dims();
                            if dims.len() != 2 || dims[1] != l.in_features() {
                                return Err(SteppingError::InvalidStructure(format!(
                                    "masked linear expects [n, {}], got {}",
                                    l.in_features(),
                                    t.shape()
                                )));
                            }
                            n = dims[0];
                            l.forward_packed_gathered(t.data(), n, false, subnet, act, nxt)?
                        }
                        None => l.forward_packed_gathered(cur, n, true, subnet, act, nxt)?,
                    };
                    std::mem::swap(cur, nxt);
                    idx = out_idx;
                    width = l.out_features();
                    flow = None;
                }
                Stage::Conv(c) => {
                    let x = match flow.take() {
                        Some(t) => t,
                        None => {
                            let mut t = Tensor::zeros(Shape::of(&[n, width]));
                            pack::scatter_columns(cur, n, &idx, t.data_mut(), width);
                            t
                        }
                    };
                    flow = Some(c.forward_packed_fused(&x, subnet, act)?);
                }
                Stage::Fixed(f) => {
                    let x = match flow.take() {
                        Some(t) => t,
                        None => {
                            let mut t = Tensor::zeros(Shape::of(&[n, width]));
                            pack::scatter_columns(cur, n, &idx, t.data_mut(), width);
                            t
                        }
                    };
                    flow = Some(crate::batch::fixed_forward(f, &x)?);
                }
            }
            // A masked stage with a fused activation consumed the next
            // (activation) stage as well.
            si += if fusable && act != FusedAct::None {
                2
            } else {
                1
            };
        }
        match flow {
            Some(t) => self.head_forward_packed(&t, subnet),
            None => {
                if self.head_panel_feeds(subnet, &idx)? {
                    let src = std::mem::take(cur);
                    let out = self.head_forward_gathered(&src, n, subnet);
                    *cur = src;
                    out
                } else {
                    let mut t = Tensor::zeros(Shape::of(&[n, width]));
                    pack::scatter_columns(cur, n, &idx, t.data_mut(), width);
                    self.head_forward_packed(&t, subnet)
                }
            }
        }
    }

    /// MAC operations the packed path actually executes for `subnet`: dense
    /// panel extents of every stage plus the head. Compare against
    /// [`SteppingNet::macs`] (the paper's budget accounting) to see how
    /// tightly execution tracks the `P_i` budgets.
    pub fn packed_macs(&self, subnet: usize) -> u64 {
        let stage_macs: u64 = self.stages.iter().map(|s| s.packed_macs(subnet)).sum();
        stage_macs + self.head_macs(subnet)
    }

    /// Compiles (or confirms) the packed head panel for `subnet`.
    fn ensure_head_plan(&mut self, subnet: usize) {
        if self.head_plans.full(subnet).is_some() {
            plan::note_hit("head", subnet);
            return;
        }
        let _compile_timer = plan::compile_timer();
        let f = self.feature_assign.len();
        let feat_idx = self.feature_assign.active_members(subnet);
        let wd = self.heads[subnet].weight().value.data();
        let cols = feat_idx.len();
        let mut weight = vec![0.0f32; self.classes * cols];
        for r in 0..self.classes {
            let dst = &mut weight[r * cols..(r + 1) * cols];
            for (d, &i) in dst.iter_mut().zip(feat_idx.iter()) {
                *d = wd[r * f + i];
            }
        }
        let weight = PackedB::pack_nt(&weight, self.classes, cols);
        plan::note_compile("head", subnet, self.classes, cols);
        self.head_plans
            .put_full(subnet, HeadPlan { feat_idx, weight });
    }

    /// Back-propagates a logits gradient through the head used by the last
    /// [`SteppingNet::forward`] and the whole stage stack, accumulating
    /// parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::ExecutorState`] before any forward, and
    /// propagates stage errors.
    pub fn backward(&mut self, dlogits: &Tensor) -> Result<()> {
        let subnet = self
            .last_subnet
            .ok_or_else(|| SteppingError::ExecutorState("backward called before forward".into()))?;
        let mut dfeat = self.heads[subnet].backward(dlogits)?;
        let mask = self.feature_mask(subnet);
        let f = mask.len();
        let n = dfeat.shape().dims()[0];
        for b in 0..n {
            for i in 0..f {
                dfeat.data_mut()[b * f + i] *= mask.data()[i];
            }
        }
        let mut g = dfeat;
        for stage in self.stages.iter_mut().rev() {
            g = stage.backward(&g)?;
        }
        Ok(())
    }

    /// Parameters trained when optimising `subnet`: all stage parameters plus
    /// that subnet's head.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::SubnetOutOfRange`].
    pub fn params_for(&mut self, subnet: usize) -> Result<Vec<&mut Param>> {
        if subnet >= self.subnets {
            return Err(SteppingError::SubnetOutOfRange {
                subnet,
                count: self.subnets,
            });
        }
        self.head_plans.invalidate("head");
        let mut params: Vec<&mut Param> = self
            .stages
            .iter_mut()
            .flat_map(|s| s.params_mut())
            .collect();
        params.extend(self.heads[subnet].params_mut());
        Ok(params)
    }

    /// Copies head 0's parameters into every other head.
    ///
    /// A fresh network only ever trains head 0 (subnet 0 *is* the whole
    /// network before construction), so the other heads would enter
    /// construction from random initialisation. Warm-starting them from the
    /// pretrained head gives every subnet a sensible classifier to refine —
    /// the paper's single-output-layer formulation gets this for free.
    pub fn warm_start_heads(&mut self) {
        self.head_plans.invalidate("head");
        let Some((first, rest)) = self.heads.split_first_mut() else {
            return; // a built network always has >= 1 head
        };
        let w = first.weight().value.clone();
        let b = first.bias().value.clone();
        for h in rest {
            h.weight_mut().value = w.clone();
            h.bias_mut().value = b.clone();
        }
    }

    /// Zeroes every gradient (stages and all heads).
    pub fn zero_grad(&mut self) {
        for s in &mut self.stages {
            for p in s.params_mut() {
                p.zero_grad();
            }
        }
        for h in &mut self.heads {
            for p in h.params_mut() {
                p.zero_grad();
            }
        }
    }

    /// Whether training-mode forwards go through compiled packed panels for
    /// stages that support it (currently masked linear stages; every other
    /// stage keeps the masked reference path). Off by default.
    pub fn train_packed(&self) -> bool {
        self.train_packed
    }

    /// Enables or disables packed training-mode forwards (see
    /// [`SteppingNet::train_packed`]). The packed path produces bit-identical
    /// activations (`f32 ==`) and populates the same backward caches, so
    /// gradients are unchanged.
    pub fn set_train_packed(&mut self, on: bool) {
        self.train_packed = on;
    }

    /// Snapshots the gradients of every parameter trained for `subnet`, in
    /// [`SteppingNet::params_for`] order (all stage parameters, then the
    /// subnet head's weight and bias).
    ///
    /// Together with [`SteppingNet::import_grads`] this is the transport the
    /// stepping-exec engine uses to move per-shard gradients between replica
    /// nets and the master.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::SubnetOutOfRange`].
    pub fn export_grads(&mut self, subnet: usize) -> Result<GradStore> {
        let params = self.params_for(subnet)?;
        Ok(GradStore::new(
            params.iter().map(|p| p.grad.clone()).collect(),
        ))
    }

    /// Overwrites the gradients of every parameter trained for `subnet` with
    /// the slots of `grads` (a [`SteppingNet::export_grads`] snapshot from a
    /// structurally identical net).
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::SubnetOutOfRange`] or
    /// [`SteppingError::InvalidStructure`] on slot-count/shape mismatch.
    pub fn import_grads(&mut self, subnet: usize, grads: &GradStore) -> Result<()> {
        let mut params = self.params_for(subnet)?;
        if params.len() != grads.len() {
            return Err(SteppingError::InvalidStructure(format!(
                "gradient import expects {} slots, got {}",
                params.len(),
                grads.len()
            )));
        }
        for (p, g) in params.iter_mut().zip(grads.iter()) {
            if p.grad.shape() != g.shape() {
                return Err(SteppingError::InvalidStructure(format!(
                    "gradient slot shape mismatch: {} vs {}",
                    p.grad.shape(),
                    g.shape()
                )));
            }
            p.grad = g.clone();
        }
        Ok(())
    }

    /// Snapshots the accumulated per-neuron importance of every masked
    /// stage, index-aligned with [`SteppingNet::masked_stage_indices`].
    pub fn export_importance(&self) -> Vec<Vec<f64>> {
        self.stages
            .iter()
            .filter_map(|s| s.importance_values().map(<[f64]>::to_vec))
            .collect()
    }

    /// Adds an [`SteppingNet::export_importance`] snapshot (from a replica
    /// net) onto this net's accumulated importance, stage by stage.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::InvalidStructure`] on stage-count or
    /// neuron-count mismatch.
    pub fn add_importance(&mut self, delta: &[Vec<f64>]) -> Result<()> {
        let masked = self.masked_stage_indices();
        if masked.len() != delta.len() {
            return Err(SteppingError::InvalidStructure(format!(
                "importance import expects {} masked stages, got {}",
                masked.len(),
                delta.len()
            )));
        }
        for (idx, d) in masked.into_iter().zip(delta.iter()) {
            self.stages[idx].add_importance_values(d)?;
        }
        Ok(())
    }

    /// Whether training-mode forwards of this net are shard-decomposable:
    /// true iff no stage couples rows of a batch (batch norm) or consumes a
    /// per-batch RNG stream (dropout). When false, the stepping-exec engine
    /// falls back to a single shard regardless of configuration.
    pub fn train_parallel_safe(&self) -> bool {
        self.stages.iter().all(Stage::shard_safe)
    }

    /// MAC operations executed by subnet `subnet` (stages + its head).
    pub fn macs(&self, subnet: usize, threshold: f32) -> u64 {
        let stage_macs: u64 = self.stages.iter().map(|s| s.macs(subnet, threshold)).sum();
        stage_macs + self.head_macs(subnet)
    }

    /// MAC operations of `subnet`'s head (active features × classes).
    pub fn head_macs(&self, subnet: usize) -> u64 {
        (self.feature_assign.active_count(subnet) * self.classes) as u64
    }

    /// Architectural MAC capacity: every weight legal and unpruned, one head
    /// reading all features — the `P_t` of the construction flow.
    pub fn full_macs(&self) -> u64 {
        let mut total = 0u64;
        for s in &self.stages {
            total += match s {
                Stage::Linear(l) => (l.out_features() * l.in_features()) as u64,
                Stage::Conv(c) => {
                    (c.out_channels() * c.in_channels() * c.kernel() * c.kernel()) as u64
                        * c.positions() as u64
                }
                Stage::Fixed(_) => 0,
            };
        }
        total + (self.feature_assign.len() * self.classes) as u64
    }

    /// Applies non-permanent pruning to every masked stage; returns the
    /// number of zeroed weights.
    pub fn prune(&mut self, threshold: f32) -> usize {
        self.stages.iter_mut().map(|s| s.prune(threshold)).sum()
    }

    /// Per-stage snapshots of which weights are currently zero, for revival
    /// tracking across a training round (fixed stages yield empty masks).
    pub fn zeroed_weight_masks(&self) -> Vec<Vec<bool>> {
        self.stages.iter().map(|s| s.zeroed_weights()).collect()
    }

    /// Counts synapses that were zero in `before` (a
    /// [`zeroed_weight_masks`](Self::zeroed_weight_masks) snapshot) and now
    /// carry magnitude `>= threshold` — weights revived after non-permanent
    /// pruning.
    pub fn count_revived(&self, before: &[Vec<bool>], threshold: f32) -> usize {
        self.stages
            .iter()
            .zip(before.iter())
            .map(|(s, b)| s.count_revived(b, threshold))
            .sum()
    }

    /// Clears accumulated importance on every masked stage.
    pub fn reset_importance(&mut self) {
        for s in &mut self.stages {
            s.reset_importance();
        }
    }

    /// Installs weight-update suppression (`β^(subnet − assign)`) on every
    /// masked stage for training `subnet`.
    pub fn apply_lr_suppression(&mut self, subnet: usize, beta: f32) {
        for s in &mut self.stages {
            s.apply_lr_suppression(subnet, beta);
        }
    }

    /// Removes weight-update suppression everywhere.
    pub fn clear_lr_suppression(&mut self) {
        for s in &mut self.stages {
            s.clear_lr_suppression();
        }
    }

    /// Short human-readable summary of the architecture and current subnet
    /// MAC footprints.
    pub fn summary(&self, threshold: f32) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "SteppingNet: input {}, {} subnets, {} classes, full {} MACs",
            self.input_shape,
            self.subnets,
            self.classes,
            self.full_macs()
        );
        for (i, s) in self.stages.iter().enumerate() {
            let extra = match s.neuron_count() {
                Some(n) => format!(" ({n} neurons)"),
                None => String::new(),
            };
            let _ = writeln!(out, "  stage {i}: {}{extra}", s.name());
        }
        for k in 0..self.subnets {
            let _ = writeln!(out, "  subnet {k}: {} MACs", self.macs(k, threshold));
        }
        out
    }
}

/// Where the builder currently is, shape-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BuilderShape {
    /// NCHW image pipeline (channels, height, width).
    Image(usize, usize, usize),
    /// Flattened feature pipeline.
    Flat(usize),
}

/// Fluent builder for [`SteppingNet`].
///
/// # Example
///
/// ```
/// use stepping_core::SteppingNetBuilder;
/// use stepping_tensor::Shape;
///
/// let net = SteppingNetBuilder::new(Shape::of(&[3, 8, 8]), 3, 0)
///     .conv(8, 3, 1, 1)
///     .relu()
///     .max_pool(2, 2)
///     .flatten()
///     .linear(16)
///     .relu()
///     .build(10)?;
/// assert_eq!(net.subnet_count(), 3);
/// assert_eq!(net.classes(), 10);
/// # Ok::<(), stepping_core::SteppingError>(())
/// ```
#[derive(Debug)]
pub struct SteppingNetBuilder {
    subnets: usize,
    rng: StdRng,
    stages: Vec<Stage>,
    shape: BuilderShape,
    input_shape: Shape,
    error: Option<SteppingError>,
    dropout_count: u64,
    seed: u64,
}

impl SteppingNetBuilder {
    /// Starts a builder for inputs of `input_shape` (`[c, h, w]` for images
    /// or `[features]` for flat inputs), `subnets` subnets, seeded
    /// initialisation.
    ///
    /// An `input_shape` that is not rank 1 or 3 is reported as
    /// [`SteppingError::BadConfig`] by [`build`](SteppingNetBuilder::build)
    /// rather than panicking here.
    ///
    /// # Panics
    ///
    /// Panics if `subnets` is zero.
    pub fn new(input_shape: Shape, subnets: usize, seed: u64) -> Self {
        assert!(subnets > 0, "at least one subnet required");
        let mut error = None;
        let shape = match input_shape.dims() {
            [c, h, w] => BuilderShape::Image(*c, *h, *w),
            [f] => BuilderShape::Flat(*f),
            _ => {
                error = Some(SteppingError::BadConfig(format!(
                    "input shape must be [c, h, w] or [features], got {input_shape}"
                )));
                BuilderShape::Flat(0)
            }
        };
        SteppingNetBuilder {
            subnets,
            rng: init::rng(seed),
            stages: Vec::new(),
            shape,
            input_shape,
            error,
            dropout_count: 0,
            seed,
        }
    }

    fn fail(&mut self, msg: String) {
        if self.error.is_none() {
            self.error = Some(SteppingError::BadConfig(msg));
        }
    }

    /// Adds a masked convolution (square kernel).
    pub fn conv(
        mut self,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.shape {
            BuilderShape::Image(c, h, w) => {
                match ConvGeometry::new(c, h, w, kernel, kernel, stride, padding) {
                    Ok(geom) => {
                        let positions = geom.positions();
                        self.stages.push(Stage::Conv(MaskedConv2d::new(
                            c,
                            out_channels,
                            kernel,
                            stride,
                            padding,
                            positions,
                            self.subnets,
                            &mut self.rng,
                        )));
                        self.shape = BuilderShape::Image(out_channels, geom.out_h, geom.out_w);
                    }
                    Err(e) => self.fail(format!("conv geometry: {e}")),
                }
            }
            BuilderShape::Flat(_) => self.fail("conv after flatten".into()),
        }
        self
    }

    /// Adds a masked fully-connected layer (requires a flat pipeline).
    pub fn linear(mut self, out_features: usize) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.shape {
            BuilderShape::Flat(f) => {
                self.stages.push(Stage::Linear(MaskedLinear::new(
                    f,
                    out_features,
                    self.subnets,
                    &mut self.rng,
                )));
                self.shape = BuilderShape::Flat(out_features);
            }
            BuilderShape::Image(..) => self.fail("linear before flatten".into()),
        }
        self
    }

    /// Adds a ReLU activation.
    pub fn relu(mut self) -> Self {
        if self.error.is_none() {
            self.stages
                .push(Stage::Fixed(FixedStage::Relu(Relu::new())));
        }
        self
    }

    /// Adds a tanh activation.
    pub fn tanh(mut self) -> Self {
        if self.error.is_none() {
            self.stages
                .push(Stage::Fixed(FixedStage::Tanh(Tanh::new())));
        }
        self
    }

    /// Adds a sigmoid activation.
    pub fn sigmoid(mut self) -> Self {
        if self.error.is_none() {
            self.stages
                .push(Stage::Fixed(FixedStage::Sigmoid(Sigmoid::new())));
        }
        self
    }

    /// Adds max pooling (image pipeline only).
    pub fn max_pool(mut self, kernel: usize, stride: usize) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.shape {
            BuilderShape::Image(c, h, w) => {
                match ConvGeometry::new(c, h, w, kernel, kernel, stride, 0) {
                    Ok(geom) => {
                        self.stages
                            .push(Stage::Fixed(FixedStage::MaxPool(MaxPool2d::new(
                                kernel, stride,
                            ))));
                        self.shape = BuilderShape::Image(c, geom.out_h, geom.out_w);
                    }
                    Err(e) => self.fail(format!("max pool geometry: {e}")),
                }
            }
            BuilderShape::Flat(_) => self.fail("max pool after flatten".into()),
        }
        self
    }

    /// Adds average pooling (image pipeline only).
    pub fn avg_pool(mut self, kernel: usize, stride: usize) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.shape {
            BuilderShape::Image(c, h, w) => {
                match ConvGeometry::new(c, h, w, kernel, kernel, stride, 0) {
                    Ok(geom) => {
                        self.stages
                            .push(Stage::Fixed(FixedStage::AvgPool(AvgPool2d::new(
                                kernel, stride,
                            ))));
                        self.shape = BuilderShape::Image(c, geom.out_h, geom.out_w);
                    }
                    Err(e) => self.fail(format!("avg pool geometry: {e}")),
                }
            }
            BuilderShape::Flat(_) => self.fail("avg pool after flatten".into()),
        }
        self
    }

    /// Adds batch normalisation matching the current pipeline (2-D per
    /// channel for images, 1-D per feature when flat).
    pub fn batch_norm(mut self) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.shape {
            BuilderShape::Image(c, ..) => {
                self.stages.push(Stage::Fixed(FixedStage::BatchNorm2d {
                    layer: BatchNorm2d::new(c),
                    assign: None,
                }));
            }
            BuilderShape::Flat(f) => {
                self.stages.push(Stage::Fixed(FixedStage::BatchNorm1d {
                    layer: BatchNorm1d::new(f),
                    assign: None,
                }));
            }
        }
        self
    }

    /// Adds inverted dropout with probability `p`.
    pub fn dropout(mut self, p: f32) -> Self {
        if self.error.is_some() {
            return self;
        }
        if !(0.0..1.0).contains(&p) {
            self.fail(format!("dropout probability {p} must be in [0, 1)"));
            return self;
        }
        let seed = self.seed.wrapping_add(0xd0_00 + self.dropout_count);
        self.dropout_count += 1;
        self.stages
            .push(Stage::Fixed(FixedStage::Dropout(Dropout::new(p, seed))));
        self
    }

    /// Flattens the image pipeline to features.
    pub fn flatten(mut self) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.shape {
            BuilderShape::Image(c, h, w) => {
                self.stages.push(Stage::Fixed(FixedStage::Flatten {
                    layer: Flatten::new(),
                    factor: h * w,
                }));
                self.shape = BuilderShape::Flat(c * h * w);
            }
            BuilderShape::Flat(_) => self.fail("flatten on an already-flat pipeline".into()),
        }
        self
    }

    /// Finalises the network, attaching one `features → classes` head per
    /// subnet.
    ///
    /// # Errors
    ///
    /// Returns the first configuration error recorded during building, or
    /// [`SteppingError::BadConfig`] when the pipeline does not end flat or
    /// has no masked stage.
    pub fn build(mut self, classes: usize) -> Result<SteppingNet> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if classes == 0 {
            return Err(SteppingError::BadConfig("classes must be nonzero".into()));
        }
        let features = match self.shape {
            BuilderShape::Flat(f) => f,
            BuilderShape::Image(..) => {
                return Err(SteppingError::BadConfig(
                    "pipeline must end with flatten (or be flat) before heads".into(),
                ))
            }
        };
        if !self.stages.iter().any(Stage::is_masked) {
            return Err(SteppingError::BadConfig(
                "network has no masked stage".into(),
            ));
        }
        let heads = (0..self.subnets)
            .map(|_| Linear::new(features, classes, &mut self.rng))
            .collect();
        let mut net = SteppingNet {
            stages: self.stages,
            heads,
            subnets: self.subnets,
            classes,
            input_shape: self.input_shape,
            feature_assign: Assignment::new(features, self.subnets),
            last_subnet: None,
            train_packed: false,
            head_plans: PlanSet::default(),
            head_scratch: PackScratch::new(),
            flow_scratch: PackScratch::new(),
        };
        net.sync_assignments()?;
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mlp() -> SteppingNet {
        SteppingNetBuilder::new(Shape::of(&[6]), 3, 1)
            .linear(8)
            .relu()
            .linear(5)
            .relu()
            .build(4)
            .unwrap()
    }

    fn cnn() -> SteppingNet {
        SteppingNetBuilder::new(Shape::of(&[2, 8, 8]), 2, 2)
            .conv(4, 3, 1, 1)
            .relu()
            .max_pool(2, 2)
            .conv(6, 3, 1, 1)
            .relu()
            .max_pool(2, 2)
            .flatten()
            .linear(12)
            .relu()
            .build(3)
            .unwrap()
    }

    #[test]
    fn builder_wires_shapes_and_heads() {
        let mut net = cnn();
        assert_eq!(net.masked_stage_indices(), vec![0, 3, 7]);
        let x = Tensor::zeros(Shape::of(&[2, 2, 8, 8]));
        let y = net.forward(&x, 0, false).unwrap();
        assert_eq!(y.shape().dims(), &[2, 3]);
        net.check_invariants().unwrap();
    }

    #[test]
    fn builder_rejects_bad_pipelines() {
        assert!(SteppingNetBuilder::new(Shape::of(&[4]), 2, 0)
            .conv(3, 3, 1, 1)
            .build(2)
            .is_err());
        assert!(SteppingNetBuilder::new(Shape::of(&[2, 4, 4]), 2, 0)
            .linear(4)
            .build(2)
            .is_err());
        assert!(SteppingNetBuilder::new(Shape::of(&[2, 4, 4]), 2, 0)
            .conv(3, 3, 1, 1)
            .build(2)
            .is_err()); // not flattened
        assert!(SteppingNetBuilder::new(Shape::of(&[4]), 2, 0)
            .linear(3)
            .build(0)
            .is_err());
        assert!(SteppingNetBuilder::new(Shape::of(&[4]), 2, 0)
            .relu()
            .build(2)
            .is_err()); // no masked stage
    }

    #[test]
    fn builder_supports_smooth_activations() {
        let mut net = SteppingNetBuilder::new(Shape::of(&[4]), 2, 0)
            .linear(6)
            .tanh()
            .linear(5)
            .sigmoid()
            .build(3)
            .unwrap();
        let x = init::uniform(Shape::of(&[2, 4]), -1.0, 1.0, &mut init::rng(1));
        let y = net.forward(&x, 1, true).unwrap();
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert_eq!(net.stages()[1].name(), "Tanh");
        assert_eq!(net.stages()[3].name(), "Sigmoid");
        net.backward(&Tensor::ones(Shape::of(&[2, 3]))).unwrap();
    }

    #[test]
    fn move_neuron_propagates_to_downstream_in_assign() {
        let mut net = mlp();
        // stage 0 linear 6→8; stage 2 linear 8→5
        net.move_neuron(0, 3, 1).unwrap();
        match &net.stages()[2] {
            Stage::Linear(l) => assert_eq!(l.in_assign().subnet_of(3), 1),
            _ => unreachable!(),
        }
        net.check_invariants().unwrap();
    }

    #[test]
    fn flatten_expands_assignment_to_downstream_linear() {
        let mut net = cnn();
        // stage 3 conv has 6 filters; after two 2x2 pools on 8x8 → 2x2
        // spatial, so each filter becomes 4 features of stage 7's input.
        net.move_neuron(3, 5, 1).unwrap();
        match &net.stages()[7] {
            Stage::Linear(l) => {
                let ia = l.in_assign();
                assert_eq!(ia.len(), 6 * 4);
                for i in 0..4 {
                    assert_eq!(ia.subnet_of(5 * 4 + i), 1);
                    assert_eq!(ia.subnet_of(i), 0);
                }
            }
            _ => unreachable!("stage 7 is the masked linear"),
        }
        // heads read the final linear's 12 outputs, all still in subnet 0
        assert_eq!(net.feature_assign().len(), 12);
        assert_eq!(net.head_macs(0), (12 * 3) as u64);
        // moving a head-feature neuron shrinks the smaller subnet's head
        net.move_neuron(7, 0, 1).unwrap();
        assert_eq!(net.head_macs(0), (11 * 3) as u64);
        assert_eq!(net.head_macs(1), (12 * 3) as u64);
    }

    #[test]
    fn incremental_property_shared_logits_inputs() {
        // Feature values of subnet-0 features are identical under subnet 1.
        let mut net = cnn();
        net.move_neuron(0, 1, 1).unwrap();
        net.move_neuron(3, 2, 1).unwrap();
        let x = init::uniform(Shape::of(&[2, 2, 8, 8]), -1.0, 1.0, &mut init::rng(9));
        let f0 = net.features(&x, 0, false).unwrap();
        let f1 = net.features(&x, 1, false).unwrap();
        let fa = net.feature_assign().clone();
        for b in 0..2 {
            for i in 0..fa.len() {
                if fa.is_active(i, 0) {
                    assert_eq!(
                        f0.data()[b * fa.len() + i],
                        f1.data()[b * fa.len() + i],
                        "feature {i} changed between subnets"
                    );
                }
            }
        }
    }

    #[test]
    fn macs_monotone_in_subnet_index() {
        let mut net = cnn();
        net.move_neuron(0, 0, 1).unwrap();
        net.move_neuron(3, 1, 1).unwrap();
        net.move_neuron(7, 2, 1).unwrap();
        assert!(net.macs(0, 0.0) < net.macs(1, 0.0));
        assert!(net.macs(1, 0.0) <= net.full_macs());
    }

    #[test]
    fn backward_accumulates_grads_for_trained_subnet_only_head() {
        let mut net = mlp();
        let x = init::uniform(Shape::of(&[4, 6]), -1.0, 1.0, &mut init::rng(3));
        let y = net.forward(&x, 1, true).unwrap();
        net.backward(&Tensor::ones(y.shape().clone())).unwrap();
        // head 1 has gradient, head 0 does not
        let g1: f32 = net.heads[1].weight().grad.norm_sq();
        let g0: f32 = net.heads[0].weight().grad.norm_sq();
        assert!(g1 > 0.0);
        assert_eq!(g0, 0.0);
        net.zero_grad();
        assert_eq!(net.heads[1].weight().grad.norm_sq(), 0.0);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut net = mlp();
        assert!(net.backward(&Tensor::zeros(Shape::of(&[1, 4]))).is_err());
    }

    #[test]
    fn params_for_includes_head() {
        let mut net = mlp();
        let n_stage_params = 4; // 2 masked linears × (w, b)
        assert_eq!(net.params_for(0).unwrap().len(), n_stage_params + 2);
        assert!(net.params_for(5).is_err());
    }

    #[test]
    fn summary_mentions_all_subnets() {
        let net = mlp();
        let s = net.summary(0.0);
        assert!(s.contains("subnet 0"));
        assert!(s.contains("subnet 2"));
        assert!(s.contains("MaskedLinear"));
    }

    #[test]
    fn unused_pool_neurons_drop_out_of_all_subnets() {
        let mut net = mlp();
        net.move_neuron(2, 0, 3).unwrap(); // unused pool (subnets = 3)
        let macs_before = net.macs(2, 0.0);
        assert!(macs_before < mlp().macs(2, 0.0));
    }

    #[test]
    fn bad_input_rank_is_a_typed_error_not_a_panic() {
        let err = SteppingNetBuilder::new(Shape::of(&[2, 3, 4, 5]), 2, 0)
            .linear(4)
            .build(2)
            .unwrap_err();
        assert!(matches!(err, SteppingError::BadConfig(_)), "{err:?}");
        let err = SteppingNetBuilder::new(Shape::of(&[2, 3]), 2, 0)
            .build(2)
            .unwrap_err();
        assert!(matches!(err, SteppingError::BadConfig(_)), "{err:?}");
    }
}
