//! Subnet construction by neuron reallocation — the work flow of the paper's
//! Fig. 3 and §III-A.
//!
//! Starting from a pretrained network with every neuron in subnet 0 (the
//! paper initialises subnet1 with the whole, width-expanded network), each
//! iteration:
//!
//! 1. trains every subnet for `m` batches in ascending order (with
//!    weight-update suppression `β^(j−i)` protecting smaller subnets), which
//!    also accumulates per-neuron importance `|∂L_k/∂r_j^k|` (eq. 2);
//! 2. applies non-permanent magnitude pruning (threshold `1e-5` in the
//!    paper);
//! 3. compares each subnet's MAC *increment* against its allowed increment —
//!    the paper's rule that neurons flow `subnet i → subnet i+1` only once
//!    the MAC difference exceeds the allowed difference (`7−3=4` in the
//!    Fig. 5 example) — and moves the lowest-`M_j^i` (eq. 3) neurons carrying
//!    a MAC mass that "just exceeds" the per-iteration quota
//!    `(P_t − P_1)/N_t` to the next subnet. Overflow from the largest subnet
//!    moves to the unused pool.
//!
//! The flow ends when every subnet's MAC count satisfies its budget, or after
//! `iterations` rounds (plus a bounded number of training-free fix-up
//! rounds).

use stepping_data::{BatchIter, Dataset, Split};
use stepping_exec::ParallelConfig;
use stepping_nn::optim::Sgd;

use crate::parallel::{BatchLoss, ParallelRunner};
use crate::telemetry::{self, Value};
use crate::{Result, SteppingError, SteppingNet};

/// Which neuron-selection criterion drives reallocation.
///
/// The paper's contribution is [`SelectionCriterion::GradientImportance`]
/// (eq. 3); the others are ablation baselines for the §III-A argument that
/// "selecting weights according to their importance for each subnet …
/// can unfortunately block some neurons and lead to a suboptimal result".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionCriterion {
    /// The paper's `M_j^i = Σ_k α_k |∂L_k/∂r_j^k|` (eq. 3).
    #[default]
    GradientImportance,
    /// Naive per-neuron weight-magnitude importance (move the smallest-|w|
    /// neurons first), ignoring larger subnets.
    WeightMagnitude,
    /// Index order (move the highest-index neurons first) — the regular
    /// structure of the any-width network, with no importance signal at all.
    IndexOrder,
}

/// Options for [`construct`].
#[derive(Debug, Clone, PartialEq)]
pub struct ConstructionOptions {
    /// Absolute MAC budget per subnet (`P_1 … P_N`), strictly ascending.
    pub mac_targets: Vec<u64>,
    /// Maximum construction iterations (`N_t`, paper: 300).
    pub iterations: usize,
    /// Training batches per subnet per iteration (`m`, paper: 250/100).
    pub batches_per_iter: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate during construction.
    pub lr: f32,
    /// Weight-update suppression base `β` (paper: 0.9).
    pub beta: f32,
    /// Multiplier between consecutive `α_k` in the selection criterion
    /// (paper: `α₁ = 1`, ×1.5 per larger subnet).
    pub alpha_growth: f64,
    /// Magnitude-pruning threshold (paper: `1e-5`).
    pub prune_threshold: f32,
    /// Whether weight-update suppression is active (Fig. 8 ablation).
    pub suppress_updates: bool,
    /// Minimum neurons per masked stage that must stay in each subnet
    /// (prevents a layer from going empty in a small subnet).
    pub min_neurons_per_stage: usize,
    /// Copy the pretrained head 0 into every subnet head before the first
    /// iteration (see [`SteppingNet::warm_start_heads`]).
    pub warm_start_heads: bool,
    /// Neuron-selection criterion (paper: gradient importance).
    pub criterion: SelectionCriterion,
    /// Shuffling seed.
    pub seed: u64,
    /// Data-parallel execution of the per-iteration training rounds
    /// (defaults to the sequential reference).
    pub parallel: ParallelConfig,
}

impl Default for ConstructionOptions {
    fn default() -> Self {
        ConstructionOptions {
            mac_targets: Vec::new(),
            iterations: 30,
            batches_per_iter: 10,
            batch_size: 32,
            lr: 0.05,
            beta: 0.9,
            alpha_growth: 1.5,
            prune_threshold: 1e-5,
            suppress_updates: true,
            min_neurons_per_stage: 1,
            warm_start_heads: true,
            criterion: SelectionCriterion::GradientImportance,
            seed: 0,
            parallel: ParallelConfig::default(),
        }
    }
}

/// What happened in one construction iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationLog {
    /// Iteration index.
    pub iteration: usize,
    /// MACs per subnet after this iteration's moves.
    pub macs: Vec<u64>,
    /// Number of neurons moved out of each subnet this iteration.
    pub moved: Vec<usize>,
    /// Mean training loss per subnet this iteration.
    pub train_loss: Vec<f32>,
    /// Synapses revived this iteration: weights zeroed by an earlier prune
    /// that regrew to `>= prune_threshold` during this round's training.
    pub revived: usize,
    /// Per-subnet budget slack `target_k − macs_k` after this iteration's
    /// moves (negative while a subnet is still over budget).
    pub budget_slack: Vec<i64>,
}

/// Result of [`construct`].
#[derive(Debug, Clone, PartialEq)]
pub struct ConstructionReport {
    /// Per-iteration logs.
    pub iterations: Vec<IterationLog>,
    /// Final MACs per subnet (post final prune).
    pub final_macs: Vec<u64>,
    /// Whether every subnet met its budget.
    pub satisfied: bool,
    /// Total weights zeroed by pruning over the whole run.
    pub pruned_weights: usize,
    /// Total synapses revived (pruned weights that regrew above the
    /// threshold) over the whole run.
    pub revived_weights: usize,
    /// Final per-subnet budget slack `target_k − macs_k` (post final prune;
    /// non-negative iff `satisfied`).
    pub final_slack: Vec<i64>,
}

impl std::fmt::Display for ConstructionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "construction: {} iterations, budgets {}, {} weights pruned, {} revived",
            self.iterations.len(),
            if self.satisfied { "met" } else { "NOT met" },
            self.pruned_weights,
            self.revived_weights
        )?;
        write!(f, "final MACs per subnet:")?;
        for m in &self.final_macs {
            write!(f, " {m}")?;
        }
        write!(f, "\nfinal budget slack per subnet:")?;
        for s in &self.final_slack {
            write!(f, " {s}")?;
        }
        Ok(())
    }
}

fn validate(net: &SteppingNet, opts: &ConstructionOptions) -> Result<()> {
    let n = net.subnet_count();
    if opts.mac_targets.len() != n {
        return Err(SteppingError::BadConfig(format!(
            "{} MAC targets for {n} subnets",
            opts.mac_targets.len()
        )));
    }
    if !opts.mac_targets.windows(2).all(|w| w[0] < w[1]) {
        return Err(SteppingError::BadConfig(
            "MAC targets must be strictly ascending".into(),
        ));
    }
    if opts.mac_targets[0] == 0 {
        return Err(SteppingError::BadConfig(
            "smallest MAC target must be nonzero".into(),
        ));
    }
    if opts.iterations == 0 || opts.batch_size == 0 {
        return Err(SteppingError::BadConfig(
            "iterations and batch size must be nonzero".into(),
        ));
    }
    if !(0.0..=1.0).contains(&opts.beta) {
        return Err(SteppingError::BadConfig(format!(
            "beta {} must be in [0, 1]",
            opts.beta
        )));
    }
    if opts.alpha_growth <= 0.0 {
        return Err(SteppingError::BadConfig(
            "alpha growth must be positive".into(),
        ));
    }
    Ok(())
}

/// The `α_k` vector of eq. 3: `α₁ = 1`, multiplied by `alpha_growth` per
/// larger subnet.
fn alphas(n: usize, growth: f64) -> Vec<f64> {
    (0..n).map(|k| growth.powi(k as i32)).collect()
}

/// Trains every subnet for `m` batches in ascending order; returns mean loss
/// per subnet. Importance accumulates inside the masked layers.
fn train_round(
    net: &mut SteppingNet,
    data: &dyn Dataset,
    opts: &ConstructionOptions,
    iteration: usize,
    runner: &ParallelRunner,
) -> Result<Vec<f32>> {
    let n = net.subnet_count();
    let mut losses = vec![0.0f32; n];
    let mut sgd = Sgd::new(opts.lr).map_err(SteppingError::Nn)?;
    for (k, loss) in losses.iter_mut().enumerate() {
        if opts.suppress_updates {
            net.apply_lr_suppression(k, opts.beta);
        } else {
            net.clear_lr_suppression();
        }
        let mut total = 0.0;
        let mut count = 0usize;
        let epoch = (iteration * n + k) as u64;
        for batch in BatchIter::new(data, Split::Train, opts.batch_size, epoch, opts.seed) {
            if count >= opts.batches_per_iter {
                break;
            }
            let (x, y) = batch?;
            let out = runner.train_batch(net, &x, &y, k, BatchLoss::CrossEntropy, false)?;
            sgd.step(&mut net.params_for(k)?)
                .map_err(SteppingError::Nn)?;
            total += out.loss;
            count += 1;
        }
        *loss = total / count.max(1) as f32;
        telemetry::counter(
            "construction",
            "construct.train_batches",
            count as u64,
            &[
                ("iteration", Value::U64(iteration as u64)),
                ("subnet", Value::U64(k as u64)),
                ("loss", Value::F64(f64::from(*loss))),
                (
                    "beta",
                    Value::F64(if opts.suppress_updates {
                        f64::from(opts.beta)
                    } else {
                        1.0
                    }),
                ),
            ],
        );
    }
    net.clear_lr_suppression();
    Ok(losses)
}

/// One movement candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    stage: usize,
    neuron: usize,
    score: f64,
    macs: u64,
}

/// Collects neurons currently owned by `subnet`, sorted by ascending
/// selection score (least important first).
fn candidates(
    net: &SteppingNet,
    subnet: usize,
    alpha: &[f64],
    threshold: f32,
    criterion: SelectionCriterion,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    for si in net.masked_stage_indices() {
        let stage = &net.stages()[si];
        // masked_stage_indices only yields masked stages, whose accessors
        // all return Some; skip rather than panic if that ever drifts.
        let Some(assign) = stage.out_assign() else {
            continue;
        };
        for o in assign.members(subnet) {
            let score = match criterion {
                SelectionCriterion::GradientImportance => stage.selection_score(o, alpha),
                SelectionCriterion::WeightMagnitude => stage.magnitude_score(o),
                // highest index first → ascending sort on negated index
                SelectionCriterion::IndexOrder => Some(-(o as f64)),
            };
            let (Some(score), Some(macs)) = (score, stage.neuron_macs(o, threshold)) else {
                continue;
            };
            out.push(Candidate {
                stage: si,
                neuron: o,
                score,
                macs,
            });
        }
    }
    out.sort_by(|a, b| {
        a.score
            .partial_cmp(&b.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

/// Moves low-importance neurons out of `subnet` until `move_mass` MACs have
/// left (or candidates run out). Returns how many neurons moved.
fn move_round(
    net: &mut SteppingNet,
    subnet: usize,
    move_mass: u64,
    alpha: &[f64],
    opts: &ConstructionOptions,
) -> Result<usize> {
    let target = subnet + 1; // == subnet_count means the unused pool
    let cands = candidates(net, subnet, alpha, opts.prune_threshold, opts.criterion);
    if telemetry::enabled() && !cands.is_empty() {
        let n = cands.len() as f64;
        let mean = cands.iter().map(|c| c.score).sum::<f64>() / n;
        telemetry::point(
            "construction",
            "construct.importance",
            &[
                ("subnet", Value::U64(subnet as u64)),
                ("candidates", Value::U64(cands.len() as u64)),
                ("score_min", Value::F64(cands[0].score)),
                ("score_mean", Value::F64(mean)),
                ("score_max", Value::F64(cands[cands.len() - 1].score)),
                ("move_mass", Value::U64(move_mass)),
            ],
        );
    }
    // How many neurons each stage may still give away from this subnet.
    let mut stage_budget: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    for si in net.masked_stage_indices() {
        let Some(assign) = net.stages()[si].out_assign() else {
            continue;
        };
        let owned = assign.members(subnet).len();
        stage_budget.insert(si, owned.saturating_sub(opts.min_neurons_per_stage));
    }
    let mut moved_mass = 0u64;
    let mut moves = Vec::new();
    for c in cands {
        if moved_mass >= move_mass {
            break;
        }
        let Some(budget) = stage_budget.get_mut(&c.stage) else {
            continue;
        };
        if *budget == 0 {
            continue;
        }
        // Zero-mass (fully pruned) neurons do not help meet the budget; skip
        // them so the loop is guaranteed to make MAC progress.
        if c.macs == 0 {
            continue;
        }
        *budget -= 1;
        moved_mass += c.macs;
        moves.push((c.stage, c.neuron, target));
    }
    let count = moves.len();
    if count > 0 {
        net.move_neurons(&moves)?;
    }
    Ok(count)
}

/// Runs the full construction flow (paper Fig. 3) on a pretrained network.
///
/// `net` must have every neuron in subnet 0. On success the network's subnets
/// are structured to meet `opts.mac_targets` (see
/// [`ConstructionReport::satisfied`]) and remain nested with the incremental
/// property intact.
///
/// # Errors
///
/// Returns [`SteppingError::BadConfig`] for inconsistent options and
/// propagates training errors.
pub fn construct(
    net: &mut SteppingNet,
    data: &dyn Dataset,
    opts: &ConstructionOptions,
) -> Result<ConstructionReport> {
    validate(net, opts)?;
    let run_span = telemetry::span("construction", "construct.run");
    let runner = ParallelRunner::new(opts.parallel, "construction")?;
    if opts.warm_start_heads {
        net.warm_start_heads();
    }
    let n = net.subnet_count();
    let alpha = alphas(n, opts.alpha_growth);
    let full = net.full_macs();
    // Per-iteration movement quota (P_t − P_1)/N_t, at least 1.
    let quota = ((full.saturating_sub(opts.mac_targets[0])) / opts.iterations as u64).max(1);
    let mut logs: Vec<IterationLog> = Vec::new();
    let mut pruned_weights = 0usize;
    let mut revived_weights = 0usize;
    let slack_of = |macs: &[u64], targets: &[u64]| -> Vec<i64> {
        macs.iter()
            .zip(targets.iter())
            .map(|(&m, &t)| t as i64 - m as i64)
            .collect()
    };

    let allowed_inc = |k: usize| -> u64 {
        if k == 0 {
            opts.mac_targets[0]
        } else {
            opts.mac_targets[k] - opts.mac_targets[k - 1]
        }
    };

    // head MACs are charged to each subnet's own increment only for k = 0;
    // for k > 0 the increment of the head is the delta of active features.
    let increments = |net: &SteppingNet| -> Vec<u64> {
        let mut incs = Vec::with_capacity(n);
        let mut prev = 0u64;
        for k in 0..n {
            let m = net.macs(k, opts.prune_threshold);
            incs.push(m.saturating_sub(prev));
            prev = m;
        }
        incs
    };

    let mut satisfied = false;
    for it in 0..opts.iterations {
        let iter_span = telemetry::span("construction", "construct.iteration");
        let zeroed_before = net.zeroed_weight_masks();
        net.reset_importance();
        let train_loss = train_round(net, data, opts, it, &runner)?;
        let iter_pruned = net.prune(opts.prune_threshold);
        pruned_weights += iter_pruned;
        let revived = net.count_revived(&zeroed_before, opts.prune_threshold);
        revived_weights += revived;

        let mut moved = vec![0usize; n];
        for k in 0..n {
            let incs = increments(net);
            let excess = incs[k].saturating_sub(allowed_inc(k));
            if excess == 0 {
                continue;
            }
            let move_mass = quota.min(excess);
            moved[k] = move_round(net, k, move_mass, &alpha, opts)?;
        }

        let macs: Vec<u64> = (0..n).map(|k| net.macs(k, opts.prune_threshold)).collect();
        let budget_slack = slack_of(&macs, &opts.mac_targets);
        if telemetry::enabled() {
            for k in 0..n {
                telemetry::point(
                    "construction",
                    "construct.subnet",
                    &[
                        ("iteration", Value::U64(it as u64)),
                        ("subnet", Value::U64(k as u64)),
                        ("macs", Value::U64(macs[k])),
                        ("target", Value::U64(opts.mac_targets[k])),
                        ("slack", Value::I64(budget_slack[k])),
                        ("moved", Value::U64(moved[k] as u64)),
                    ],
                );
            }
        }
        logs.push(IterationLog {
            iteration: it,
            macs: macs.clone(),
            moved: moved.clone(),
            train_loss: train_loss.clone(),
            revived,
            budget_slack,
        });

        // With the `verify-invariants` feature, re-verify the stepping
        // structure after this iteration's reallocations (no-op otherwise).
        crate::hook::run_if_enabled(net)?;

        satisfied = macs
            .iter()
            .zip(opts.mac_targets.iter())
            .all(|(m, t)| m <= t);
        iter_span.end(&[
            ("iteration", Value::U64(it as u64)),
            (
                "neurons_moved",
                Value::U64(moved.iter().sum::<usize>() as u64),
            ),
            ("synapses_pruned", Value::U64(iter_pruned as u64)),
            ("synapses_revived", Value::U64(revived as u64)),
            (
                "loss_mean",
                Value::F64(
                    f64::from(train_loss.iter().sum::<f32>()) / train_loss.len().max(1) as f64,
                ),
            ),
            ("satisfied", Value::Bool(satisfied)),
        ]);
        if satisfied {
            break;
        }
    }

    // Training-free fix-up: if budgets are still unmet (e.g. short
    // `iterations` in tests), keep moving without the quota cap so the
    // structure lands on budget. Importance from the last round still guides
    // the selection.
    let mut fixup = 0;
    while !satisfied && fixup < 16 * n {
        let mut any = 0;
        for k in 0..n {
            let incs = increments(net);
            let excess = incs[k].saturating_sub(allowed_inc(k));
            if excess > 0 {
                any += move_round(net, k, excess, &alpha, opts)?;
            }
        }
        let macs: Vec<u64> = (0..n).map(|k| net.macs(k, opts.prune_threshold)).collect();
        crate::hook::run_if_enabled(net)?;
        satisfied = macs
            .iter()
            .zip(opts.mac_targets.iter())
            .all(|(m, t)| m <= t);
        fixup += 1;
        if any == 0 {
            break; // min-neuron floors prevent further movement
        }
    }

    pruned_weights += net.prune(opts.prune_threshold);
    let final_macs: Vec<u64> = (0..n).map(|k| net.macs(k, opts.prune_threshold)).collect();
    let satisfied = final_macs
        .iter()
        .zip(opts.mac_targets.iter())
        .all(|(m, t)| m <= t);
    let final_slack = slack_of(&final_macs, &opts.mac_targets);
    run_span.end(&[
        ("iterations", Value::U64(logs.len() as u64)),
        ("fixup_rounds", Value::U64(fixup as u64)),
        ("satisfied", Value::Bool(satisfied)),
        ("pruned_weights", Value::U64(pruned_weights as u64)),
        ("revived_weights", Value::U64(revived_weights as u64)),
    ]);
    Ok(ConstructionReport {
        iterations: logs,
        final_macs,
        satisfied,
        pruned_weights,
        revived_weights,
        final_slack,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_subnet, TrainOptions};
    use crate::SteppingNetBuilder;
    use stepping_data::{GaussianBlobs, GaussianBlobsConfig};
    use stepping_tensor::Shape;

    fn data() -> GaussianBlobs {
        GaussianBlobs::new(
            GaussianBlobsConfig {
                classes: 3,
                features: 10,
                train_per_class: 30,
                test_per_class: 10,
                separation: 3.0,
                noise_std: 0.6,
            },
            21,
        )
        .unwrap()
    }

    fn net(subnets: usize) -> crate::SteppingNet {
        SteppingNetBuilder::new(Shape::of(&[10]), subnets, 4)
            .linear(24)
            .relu()
            .linear(16)
            .relu()
            .build(3)
            .unwrap()
    }

    fn opts(net: &crate::SteppingNet, fractions: &[f64]) -> ConstructionOptions {
        let full = net.full_macs();
        ConstructionOptions {
            mac_targets: fractions.iter().map(|f| (full as f64 * f) as u64).collect(),
            iterations: 12,
            batches_per_iter: 4,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        }
    }

    #[test]
    fn construction_meets_budgets_and_keeps_nesting() {
        let d = data();
        let mut n = net(3);
        train_subnet(
            &mut n,
            &d,
            0,
            &TrainOptions {
                epochs: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let o = opts(&n, &[0.2, 0.5, 0.8]);
        let report = construct(&mut n, &d, &o).unwrap();
        assert!(
            report.satisfied,
            "final macs {:?} targets {:?}",
            report.final_macs, o.mac_targets
        );
        for (m, t) in report.final_macs.iter().zip(o.mac_targets.iter()) {
            assert!(m <= t);
        }
        // nesting: macs ascending
        assert!(report.final_macs.windows(2).all(|w| w[0] <= w[1]));
        n.check_invariants().unwrap();
    }

    #[test]
    fn every_subnet_keeps_minimum_neurons() {
        let d = data();
        let mut n = net(3);
        let o = ConstructionOptions {
            min_neurons_per_stage: 2,
            ..opts(&n, &[0.1, 0.3, 0.6])
        };
        construct(&mut n, &d, &o).unwrap();
        for si in n.masked_stage_indices() {
            let a = n.stages()[si].out_assign().unwrap();
            assert!(
                a.active_count(0) >= 2,
                "stage {si} has {} subnet-0 neurons",
                a.active_count(0)
            );
        }
    }

    #[test]
    fn validation_rejects_bad_targets() {
        let d = data();
        let mut n = net(2);
        let bad = ConstructionOptions {
            mac_targets: vec![100],
            ..Default::default()
        };
        assert!(construct(&mut n, &d, &bad).is_err());
        let bad = ConstructionOptions {
            mac_targets: vec![200, 100],
            ..Default::default()
        };
        assert!(construct(&mut n, &d, &bad).is_err());
        let bad = ConstructionOptions {
            mac_targets: vec![0, 100],
            ..Default::default()
        };
        assert!(construct(&mut n, &d, &bad).is_err());
        let bad = ConstructionOptions {
            mac_targets: vec![100, 200],
            beta: 1.5,
            ..Default::default()
        };
        assert!(construct(&mut n, &d, &bad).is_err());
    }

    #[test]
    fn iteration_logs_are_recorded() {
        let d = data();
        let mut n = net(2);
        let o = opts(&n, &[0.3, 0.7]);
        let report = construct(&mut n, &d, &o).unwrap();
        assert!(!report.iterations.is_empty());
        let log = &report.iterations[0];
        assert_eq!(log.macs.len(), 2);
        assert_eq!(log.train_loss.len(), 2);
        assert_eq!(log.budget_slack.len(), 2);
        for log in &report.iterations {
            for (k, slack) in log.budget_slack.iter().enumerate() {
                assert_eq!(*slack, o.mac_targets[k] as i64 - log.macs[k] as i64);
            }
        }
        assert_eq!(report.final_slack.len(), 2);
        assert_eq!(
            report.satisfied,
            report.final_slack.iter().all(|s| *s >= 0),
            "satisfied must match non-negative final slack"
        );
        assert_eq!(
            report.revived_weights,
            report.iterations.iter().map(|l| l.revived).sum::<usize>()
        );
    }

    #[test]
    fn all_selection_criteria_produce_valid_structures() {
        let d = data();
        for criterion in [
            SelectionCriterion::GradientImportance,
            SelectionCriterion::WeightMagnitude,
            SelectionCriterion::IndexOrder,
        ] {
            let mut n = net(3);
            let o = ConstructionOptions {
                criterion,
                ..opts(&n, &[0.2, 0.5, 0.8])
            };
            let report = construct(&mut n, &d, &o).unwrap();
            assert!(report.satisfied, "{criterion:?} missed budgets");
            n.check_invariants().unwrap();
        }
    }

    #[test]
    fn index_order_moves_highest_indices_first() {
        let d = data();
        let mut n = net(2);
        let o = ConstructionOptions {
            criterion: SelectionCriterion::IndexOrder,
            ..opts(&n, &[0.3, 0.7])
        };
        construct(&mut n, &d, &o).unwrap();
        // subnet-0 neurons of the first stage occupy a prefix of the index
        // range (regular any-width-like structure)
        let a = n.stages()[0].out_assign().unwrap();
        let members = a.members(0);
        let max0 = members.iter().max().copied().unwrap();
        for i in 0..=max0 {
            assert!(
                a.subnet_of(i) == 0 || i > max0,
                "index-order criterion should keep a prefix in subnet 0"
            );
        }
    }

    #[test]
    fn report_display_is_informative() {
        let r = ConstructionReport {
            iterations: vec![],
            final_macs: vec![10, 20],
            satisfied: true,
            pruned_weights: 3,
            revived_weights: 2,
            final_slack: vec![5, -1],
        };
        let s = r.to_string();
        assert!(s.contains("met") && s.contains("10 20") && s.contains('3'));
        assert!(s.contains("2 revived") && s.contains("5 -1"), "{s}");
        let r2 = ConstructionReport {
            satisfied: false,
            ..r
        };
        assert!(r2.to_string().contains("NOT met"));
    }

    #[test]
    fn alphas_grow_geometrically() {
        let a = alphas(4, 1.5);
        assert_eq!(a[0], 1.0);
        assert!((a[3] - 3.375).abs() < 1e-12);
    }

    #[test]
    fn ablation_flag_disables_suppression_without_failing() {
        let d = data();
        let mut n = net(2);
        let o = ConstructionOptions {
            suppress_updates: false,
            ..opts(&n, &[0.3, 0.7])
        };
        let report = construct(&mut n, &d, &o).unwrap();
        assert!(report.satisfied);
    }
}
