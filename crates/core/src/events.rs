//! Central registry of telemetry phase and event names.
//!
//! Every `phase` and `name` passed to [`crate::telemetry::point`],
//! [`crate::telemetry::counter`], or [`crate::telemetry::span`] anywhere in
//! the workspace must come from this module (or be a string literal equal to
//! one of these constants). The `stepping-lint` L6 *telemetry hygiene* rule
//! parses this file and flags any emission whose phase or event name is not
//! registered here — a typo'd counter name would otherwise silently split a
//! metric in two, and `stepping-obs` aggregation (which matches on these
//! exact strings) would never see it.
//!
//! `stepping-obs` consumes the same constants on the read side
//! (`summary.rs` roll-ups, the console sink's `report` routing), so the
//! emitter and the aggregator can no longer drift apart.

/// Coarse pipeline phases — the first argument of every emission.
pub mod phase {
    /// Subnet construction (paper §III-A): iteration spans, importance.
    pub const CONSTRUCTION: &str = "construction";
    /// Subnet training and knowledge distillation (§III-B).
    pub const TRAINING: &str = "training";
    /// Incremental / anytime inference (executor, driver, live sessions).
    pub const INFERENCE: &str = "inference";
    /// The concurrent batched serving runtime (`stepping-serve`).
    pub const SERVING: &str = "serving";
    /// Compiled-plan cache activity (`stepping_core::plan`).
    pub const PLAN: &str = "plan";
    /// Pre-formatted bench/report text routed through `stepping-obs`.
    pub const REPORT: &str = "report";

    /// Every registered phase.
    pub const ALL: &[&str] = &[CONSTRUCTION, TRAINING, INFERENCE, SERVING, PLAN, REPORT];
}

/// Event and counter names — the second argument of every emission.
pub mod event {
    // construction
    /// Whole construction run span.
    pub const CONSTRUCT_RUN: &str = "construct.run";
    /// One construction iteration span (moves/prunes/revives).
    pub const CONSTRUCT_ITERATION: &str = "construct.iteration";
    /// Per-subnet MAC-vs-budget point at the end of an iteration.
    pub const CONSTRUCT_SUBNET: &str = "construct.subnet";
    /// Importance-statistics point after an evaluation pass.
    pub const CONSTRUCT_IMPORTANCE: &str = "construct.importance";
    /// Training batches executed during construction.
    pub const CONSTRUCT_TRAIN_BATCHES: &str = "construct.train_batches";

    // training
    /// One-subnet training run span.
    pub const TRAIN_SUBNET: &str = "train.subnet";
    /// One training epoch span.
    pub const TRAIN_EPOCH: &str = "train.epoch";
    /// Training batches executed.
    pub const TRAIN_BATCHES: &str = "train.batches";

    // distillation
    /// Whole distillation run span.
    pub const DISTILL_RUN: &str = "distill.run";
    /// One distillation epoch span.
    pub const DISTILL_EPOCH: &str = "distill.epoch";
    /// Per-subnet distillation point (CE/KL loss split).
    pub const DISTILL_SUBNET: &str = "distill.subnet";
    /// Distillation batches executed.
    pub const DISTILL_BATCHES: &str = "distill.batches";

    // incremental executor
    /// Initial subnet run span of the incremental executor.
    pub const EXEC_BEGIN: &str = "exec.begin";
    /// Expand-step span (only newly added neurons).
    pub const EXEC_EXPAND: &str = "exec.expand";
    /// Contract-step span (head-only re-read at a smaller subnet).
    pub const EXEC_CONTRACT: &str = "exec.contract";
    /// Batched initial run span (`BatchExecutor::begin`).
    pub const EXEC_BATCH_BEGIN: &str = "exec.batch_begin";
    /// Batched expand span (`BatchExecutor::expand`).
    pub const EXEC_BATCH_EXPAND: &str = "exec.batch_expand";

    // session driver
    /// Whole `Session::run*` drive span.
    pub const DRIVE_RUN: &str = "drive.run";
    /// One resource-slice span of a drive.
    pub const DRIVE_SLICE: &str = "drive.slice";
    /// Upgrade decision point within a slice.
    pub const DRIVE_UPGRADE: &str = "drive.upgrade";
    /// Deadline-resolution point of `run_until_deadline`.
    pub const DRIVE_DEADLINE: &str = "drive.deadline";
    /// Per-prediction point of a live (streaming) session.
    pub const LIVE_PREDICTION: &str = "live.prediction";

    // serving
    /// One fused micro-batch span (begin or upgrade).
    pub const SERVE_BATCH: &str = "serve.batch";
    /// Unaffordable upgrade answered synchronously from cache.
    pub const SERVE_CACHE_HIT: &str = "serve.cache_hit";
    /// Admission control shed an upgrade to its session cache (full lane).
    pub const SERVE_SHED: &str = "serve.shed";

    // routing front door (stepping-router)
    /// A new session was rerouted off its ring owner (breaker open, drain,
    /// or admission refusal).
    pub const ROUTER_REROUTE: &str = "router.reroute";
    /// A replica entered drain (refusing new sessions, serving old ones).
    pub const ROUTER_DRAIN: &str = "router.drain";
    /// A replica's health breaker tripped open.
    pub const ROUTER_BREAKER_TRIP: &str = "router.breaker_trip";

    // compiled plans
    /// A `(layer, subnet)` plan was compiled.
    pub const PLAN_COMPILE: &str = "plan.compile";
    /// A compiled plan was served from cache.
    pub const PLAN_CACHE_HIT: &str = "plan.cache_hit";
    /// A mutation dropped compiled plans and advanced the epoch.
    pub const PLAN_INVALIDATE: &str = "plan.invalidate";

    // parallel execution pool
    /// Pool construction point / per-batch dispatch span.
    pub const POOL_SPAWN: &str = "pool.spawn";
    /// One shard job span.
    pub const POOL_SHARD: &str = "pool.shard";
    /// Rows dispatched to shards.
    pub const POOL_SHARD_ROWS: &str = "pool.shard.rows";
    /// Fixed-order tree-reduction span.
    pub const POOL_REDUCE: &str = "pool.reduce";
    /// Pairwise combines performed by the reduction.
    pub const POOL_REDUCE_OPS: &str = "pool.reduce.ops";
    /// Batch fell back to the sequential path (shard-unsafe stage).
    pub const POOL_FALLBACK: &str = "pool.fallback";

    // report channel (stepping-obs report_text / progress)
    /// Pre-formatted stdout report text.
    pub const REPORT_TEXT: &str = "text";
    /// Pre-formatted stderr progress text.
    pub const REPORT_PROGRESS: &str = "progress";

    /// Every registered event name.
    pub const ALL: &[&str] = &[
        CONSTRUCT_RUN,
        CONSTRUCT_ITERATION,
        CONSTRUCT_SUBNET,
        CONSTRUCT_IMPORTANCE,
        CONSTRUCT_TRAIN_BATCHES,
        TRAIN_SUBNET,
        TRAIN_EPOCH,
        TRAIN_BATCHES,
        DISTILL_RUN,
        DISTILL_EPOCH,
        DISTILL_SUBNET,
        DISTILL_BATCHES,
        EXEC_BEGIN,
        EXEC_EXPAND,
        EXEC_CONTRACT,
        EXEC_BATCH_BEGIN,
        EXEC_BATCH_EXPAND,
        DRIVE_RUN,
        DRIVE_SLICE,
        DRIVE_UPGRADE,
        DRIVE_DEADLINE,
        LIVE_PREDICTION,
        SERVE_BATCH,
        SERVE_CACHE_HIT,
        SERVE_SHED,
        ROUTER_REROUTE,
        ROUTER_DRAIN,
        ROUTER_BREAKER_TRIP,
        PLAN_COMPILE,
        PLAN_CACHE_HIT,
        PLAN_INVALIDATE,
        POOL_SPAWN,
        POOL_SHARD,
        POOL_SHARD_ROWS,
        POOL_REDUCE,
        POOL_REDUCE_OPS,
        POOL_FALLBACK,
        REPORT_TEXT,
        REPORT_PROGRESS,
    ];
}

/// Production metric names — the series registered with
/// `stepping_metrics::MetricsRegistry::register_*`.
///
/// These are the always-on aggregate metrics (counters, gauges, latency
/// histograms), distinct from the per-event telemetry names in [`event`]:
/// a metric exists for the whole process lifetime and is read via
/// snapshots, while an event is emitted once per occurrence into the `obs`
/// pipeline. The `stepping-lint` L6 rule checks `register_*` call sites
/// against this table, and [`is_metric`] is installed as the runtime
/// validator (see `MetricsRegistry::set_validator`) so an unregistered
/// name surfaces in every snapshot's `invalid_names` count.
pub mod metric {
    // serving lifecycle (admission → queue → batch → lock → forward → reply)
    /// Requests admitted into the server (submit + upgrade).
    pub const SERVE_ADMITTED: &str = "serve.admitted";
    /// Requests fully completed (reply sent).
    pub const SERVE_COMPLETED: &str = "serve.completed";
    /// Admission-side bookkeeping latency (resolve + enqueue).
    pub const SERVE_ADMISSION_NS: &str = "serve.admission_ns";
    /// Jobs waiting in the batch queue right now (gauge).
    pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Queue depth observed by each worker at batch extraction.
    pub const SERVE_QUEUE_DEPTH_SAMPLED: &str = "serve.queue_depth_sampled";
    /// Per-job time from enqueue to batch extraction.
    pub const SERVE_QUEUE_WAIT_NS: &str = "serve.queue_wait_ns";
    /// Worker wait for the queue lock / batch condvar.
    pub const SERVE_LOCK_WAIT_NS: &str = "serve.lock_wait_ns";
    /// Oldest job's age when its batch was flushed (batch formation time).
    pub const SERVE_BATCH_FORM_NS: &str = "serve.batch_form_ns";
    /// Jobs fused per executed batch (per batch-key series).
    pub const SERVE_BATCH_OCCUPANCY: &str = "serve.batch_occupancy";
    /// Packed forward pass latency per batch.
    pub const SERVE_FORWARD_NS: &str = "serve.forward_ns";
    /// Reply delivery latency per batch.
    pub const SERVE_REPLY_NS: &str = "serve.reply_ns";
    /// Per-worker nanoseconds spent executing batches (utilization).
    pub const SERVE_WORKER_BUSY_NS: &str = "serve.worker_busy_ns";
    /// Requests whose budget was already blown at completion.
    pub const SERVE_DEADLINE_MISS: &str = "serve.deadline_miss";
    /// Unaffordable upgrades answered synchronously from cache.
    pub const SERVE_CACHE_HIT: &str = "serve.cache_hit";
    /// Depth of the claimed lane at batch extraction (per claim).
    pub const SERVE_LANE_DEPTH: &str = "serve.lane_depth";
    /// Requests admitted below their requested subnet (admission downgrade).
    pub const SERVE_DEGRADED: &str = "serve.degraded";
    /// Upgrades shed to their session cache by a full lane.
    pub const SERVE_SHED: &str = "serve.shed";
    /// Requests refused outright by admission control (queue full).
    pub const SERVE_REJECTED: &str = "serve.rejected";

    // routing front door (stepping-router)
    /// Sessions routed to their ring-owner replica (first placement).
    pub const ROUTER_ROUTE: &str = "router.route";
    /// Sessions rerouted off their ring owner (breaker/drain/refusal).
    pub const ROUTER_REROUTE: &str = "router.reroute";
    /// Replica drains initiated through the router.
    pub const ROUTER_DRAIN: &str = "router.drain";
    /// Health-breaker trips (replica marked unroutable for new sessions).
    pub const ROUTER_BREAKER_TRIP: &str = "router.breaker_trip";
    /// Live sessions per replica (gauge, `replica="N"` label).
    pub const ROUTER_REPLICA_DEPTH: &str = "router.replica_depth";
    /// Ring imbalance at each placement: owned vnode share of the chosen
    /// replica in tenths of a percent.
    pub const ROUTER_RING_IMBALANCE: &str = "router.ring_imbalance";

    // execution pool
    /// Dispatch side of one pool run (send jobs to workers).
    pub const EXEC_DISPATCH_NS: &str = "exec.dispatch_ns";
    /// Collect/reduce side of one pool run.
    pub const EXEC_REDUCE_NS: &str = "exec.reduce_ns";
    /// Whole pool run (dispatch + workers + collect).
    pub const EXEC_POOL_RUN_NS: &str = "exec.pool_run_ns";

    // compiled-plan cache
    /// Plans compiled.
    pub const PLAN_COMPILE: &str = "plan.compile";
    /// Plan-compilation latency.
    pub const PLAN_COMPILE_NS: &str = "plan.compile_ns";
    /// Plans served from cache.
    pub const PLAN_CACHE_HIT: &str = "plan.cache_hit";
    /// Cache invalidations (epoch advances).
    pub const PLAN_INVALIDATE: &str = "plan.invalidate";
    /// Blocked-GEMM time inside packed plan execution.
    pub const PLAN_GEMM_NS: &str = "plan.gemm_ns";
    /// Panel gather / im2col packing time inside packed plan execution.
    pub const PLAN_PACK_NS: &str = "plan.pack_ns";

    /// Every registered metric name.
    pub const ALL: &[&str] = &[
        SERVE_ADMITTED,
        SERVE_COMPLETED,
        SERVE_ADMISSION_NS,
        SERVE_QUEUE_DEPTH,
        SERVE_QUEUE_DEPTH_SAMPLED,
        SERVE_QUEUE_WAIT_NS,
        SERVE_LOCK_WAIT_NS,
        SERVE_BATCH_FORM_NS,
        SERVE_BATCH_OCCUPANCY,
        SERVE_FORWARD_NS,
        SERVE_REPLY_NS,
        SERVE_WORKER_BUSY_NS,
        SERVE_DEADLINE_MISS,
        SERVE_CACHE_HIT,
        SERVE_LANE_DEPTH,
        SERVE_DEGRADED,
        SERVE_SHED,
        SERVE_REJECTED,
        ROUTER_ROUTE,
        ROUTER_REROUTE,
        ROUTER_DRAIN,
        ROUTER_BREAKER_TRIP,
        ROUTER_REPLICA_DEPTH,
        ROUTER_RING_IMBALANCE,
        EXEC_DISPATCH_NS,
        EXEC_REDUCE_NS,
        EXEC_POOL_RUN_NS,
        PLAN_COMPILE,
        PLAN_COMPILE_NS,
        PLAN_CACHE_HIT,
        PLAN_INVALIDATE,
        PLAN_GEMM_NS,
        PLAN_PACK_NS,
    ];
}

/// Whether `name` is a registered phase.
pub fn is_phase(name: &str) -> bool {
    phase::ALL.contains(&name)
}

/// Whether `name` is a registered event name.
pub fn is_event(name: &str) -> bool {
    event::ALL.contains(&name)
}

/// Whether `name` is a registered production metric name. Installed as the
/// `MetricsRegistry` runtime validator by the serving engine and benches.
pub fn is_metric(name: &str) -> bool {
    metric::ALL.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_duplicate_free() {
        for (i, a) in event::ALL.iter().enumerate() {
            for b in &event::ALL[i + 1..] {
                assert_ne!(a, b, "duplicate event name");
            }
        }
        for (i, a) in phase::ALL.iter().enumerate() {
            for b in &phase::ALL[i + 1..] {
                assert_ne!(a, b, "duplicate phase name");
            }
        }
        for (i, a) in metric::ALL.iter().enumerate() {
            for b in &metric::ALL[i + 1..] {
                assert_ne!(a, b, "duplicate metric name");
            }
        }
    }

    #[test]
    fn lookups() {
        assert!(is_phase(phase::INFERENCE));
        assert!(!is_phase("inferense"));
        assert!(is_event(event::PLAN_CACHE_HIT));
        assert!(!is_event("plan.cachehit"));
        assert!(is_metric(metric::SERVE_QUEUE_DEPTH));
        assert!(!is_metric("serve.queuedepth"));
    }

    #[test]
    fn event_names_are_dot_separated_lowercase() {
        for name in event::ALL.iter().chain(metric::ALL) {
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "event name {name:?} breaks the naming convention"
            );
        }
    }
}
