//! Neuron-to-subnet assignment.
//!
//! Every neuron (fully-connected unit or convolutional filter) carries the
//! index of the *smallest* subnet containing it; subnet `k` is the set of
//! neurons with assignment `≤ k`. A neuron moved past the largest subnet
//! lands in the **unused pool** ([`Assignment::UNUSED_OFFSET`] semantics):
//! the construction flow of the paper (§III-A1) moves overflow neurons out
//! of even the largest subnet, because the width-expanded starting network
//! has far more MACs than the largest budget `P_N`.

use serde::{Deserialize, Serialize};

use crate::{Result, SteppingError};

/// Subnet assignment of a group of neurons (one layer's outputs).
///
/// Values `0..subnet_count` name subnets (0 = smallest); the value
/// `subnet_count` is the unused pool.
///
/// # Example
///
/// ```
/// use stepping_core::Assignment;
///
/// let mut a = Assignment::new(4, 3); // 4 neurons, 3 subnets, all in subnet 0
/// a.move_neuron(2, 1)?;
/// assert_eq!(a.subnet_of(2), 1);
/// assert_eq!(a.members(0), vec![0, 1, 3]);
/// assert!(a.is_active(2, 1) && !a.is_active(2, 0));
/// # Ok::<(), stepping_core::SteppingError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    assign: Vec<u16>,
    subnet_count: usize,
}

impl Assignment {
    /// Creates an assignment of `neurons` neurons, all in subnet 0, with
    /// `subnet_count` subnets.
    ///
    /// # Panics
    ///
    /// Panics if `subnet_count` is zero or exceeds `u16::MAX - 1`.
    pub fn new(neurons: usize, subnet_count: usize) -> Self {
        assert!(subnet_count > 0, "at least one subnet required");
        assert!(subnet_count < u16::MAX as usize, "too many subnets");
        Assignment {
            assign: vec![0; neurons],
            subnet_count,
        }
    }

    /// Number of neurons.
    pub fn len(&self) -> usize {
        self.assign.len()
    }

    /// Whether the layer has no neurons.
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// Number of subnets (excluding the unused pool).
    pub fn subnet_count(&self) -> usize {
        self.subnet_count
    }

    /// The assignment value denoting the unused pool.
    pub fn unused(&self) -> usize {
        self.subnet_count
    }

    /// The subnet (or unused pool) of `neuron`.
    ///
    /// # Panics
    ///
    /// Panics if `neuron` is out of range.
    pub fn subnet_of(&self, neuron: usize) -> usize {
        self.assign[neuron] as usize
    }

    /// Whether `neuron` participates in subnet `subnet`.
    pub fn is_active(&self, neuron: usize, subnet: usize) -> bool {
        (self.assign[neuron] as usize) <= subnet
    }

    /// Raw assignment values.
    pub fn values(&self) -> &[u16] {
        &self.assign
    }

    /// Moves `neuron` to `target` (a subnet index or the unused pool).
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::SubnetOutOfRange`] when `target` exceeds the
    /// unused pool, or [`SteppingError::InvalidStructure`] when `neuron` is
    /// out of range.
    pub fn move_neuron(&mut self, neuron: usize, target: usize) -> Result<()> {
        if target > self.unused() {
            return Err(SteppingError::SubnetOutOfRange {
                subnet: target,
                count: self.subnet_count,
            });
        }
        if neuron >= self.assign.len() {
            return Err(SteppingError::InvalidStructure(format!(
                "neuron {neuron} out of range for layer of {}",
                self.assign.len()
            )));
        }
        self.assign[neuron] = target as u16;
        Ok(())
    }

    /// Neurons whose smallest containing subnet is exactly `subnet`.
    pub fn members(&self, subnet: usize) -> Vec<usize> {
        self.assign
            .iter()
            .enumerate()
            .filter(|(_, &a)| a as usize == subnet)
            .map(|(i, _)| i)
            .collect()
    }

    /// Neurons active in `subnet` (assignment ≤ subnet).
    pub fn active_members(&self, subnet: usize) -> Vec<usize> {
        self.assign
            .iter()
            .enumerate()
            .filter(|(_, &a)| (a as usize) <= subnet)
            .map(|(i, _)| i)
            .collect()
    }

    /// Count of neurons active in `subnet`.
    pub fn active_count(&self, subnet: usize) -> usize {
        self.assign
            .iter()
            .filter(|&&a| (a as usize) <= subnet)
            .count()
    }

    /// Expands each value `factor` times (channel assignment → flattened
    /// feature assignment across `factor = h·w` spatial positions).
    pub fn repeat_each(&self, factor: usize) -> Assignment {
        let mut assign = Vec::with_capacity(self.assign.len() * factor);
        for &a in &self.assign {
            assign.extend(std::iter::repeat_n(a, factor));
        }
        Assignment {
            assign,
            subnet_count: self.subnet_count,
        }
    }

    /// Checks the nesting invariant against another assignment claiming to be
    /// a later snapshot: neurons may only move to *larger* indices
    /// (subnets only shed neurons downstream during construction).
    pub fn is_monotone_successor(&self, later: &Assignment) -> bool {
        self.assign.len() == later.assign.len()
            && self.subnet_count == later.subnet_count
            && self
                .assign
                .iter()
                .zip(later.assign.iter())
                .all(|(a, b)| b >= a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_assignment_is_all_subnet_zero() {
        let a = Assignment::new(5, 3);
        assert_eq!(a.len(), 5);
        assert_eq!(a.active_count(0), 5);
        assert_eq!(a.members(1), Vec::<usize>::new());
        assert_eq!(a.unused(), 3);
    }

    #[test]
    fn move_and_membership() {
        let mut a = Assignment::new(4, 2);
        a.move_neuron(1, 1).unwrap();
        a.move_neuron(3, 2).unwrap(); // unused pool
        assert_eq!(a.members(0), vec![0, 2]);
        assert_eq!(a.members(1), vec![1]);
        assert_eq!(a.members(2), vec![3]);
        assert_eq!(a.active_members(1), vec![0, 1, 2]);
        assert_eq!(a.active_count(0), 2);
        assert!(!a.is_active(3, 1));
    }

    #[test]
    fn move_validates_bounds() {
        let mut a = Assignment::new(2, 2);
        assert!(a.move_neuron(0, 3).is_err());
        assert!(a.move_neuron(5, 1).is_err());
    }

    #[test]
    fn repeat_each_expands_for_flatten() {
        let mut a = Assignment::new(2, 2);
        a.move_neuron(1, 1).unwrap();
        let f = a.repeat_each(3);
        assert_eq!(f.values(), &[0, 0, 0, 1, 1, 1]);
        assert_eq!(f.subnet_count(), 2);
    }

    #[test]
    fn monotone_successor_detects_illegal_backflow() {
        let mut a = Assignment::new(3, 2);
        a.move_neuron(0, 1).unwrap();
        let mut later = a.clone();
        later.move_neuron(1, 1).unwrap();
        assert!(a.is_monotone_successor(&later));
        let mut bad = a.clone();
        bad.move_neuron(0, 0).unwrap();
        assert!(!a.is_monotone_successor(&bad));
    }

    #[test]
    #[should_panic(expected = "at least one subnet")]
    fn zero_subnets_panics() {
        let _ = Assignment::new(1, 0);
    }
}
