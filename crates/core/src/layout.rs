//! Layout shuffles between the `im2col` matrix world and NCHW activations.

use stepping_tensor::{Shape, Tensor};

/// Scatters `[n·positions, channels]` rows into NCHW
/// `[n, channels, oh, ow]`.
pub(crate) fn mat_to_nchw(mat: &Tensor, n: usize, c: usize, oh: usize, ow: usize) -> Tensor {
    let positions = oh * ow;
    let mut out = Tensor::zeros(Shape::of(&[n, c, oh, ow]));
    let src = mat.data();
    let dst = out.data_mut();
    for b in 0..n {
        for p in 0..positions {
            let row = (b * positions + p) * c;
            for ch in 0..c {
                dst[(b * c + ch) * positions + p] = src[row + ch];
            }
        }
    }
    out
}

/// Gathers NCHW `[n, channels, oh, ow]` into `[n·positions, channels]` rows —
/// the inverse of [`mat_to_nchw`].
pub(crate) fn nchw_to_mat(t: &Tensor, n: usize, c: usize, oh: usize, ow: usize) -> Tensor {
    let positions = oh * ow;
    let mut out = Tensor::zeros(Shape::of(&[n * positions, c]));
    let src = t.data();
    let dst = out.data_mut();
    for b in 0..n {
        for p in 0..positions {
            let row = (b * positions + p) * c;
            for ch in 0..c {
                dst[row + ch] = src[(b * c + ch) * positions + p];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepping_tensor::init::{rng, uniform};

    #[test]
    fn round_trip_is_identity() {
        let x = uniform(Shape::of(&[2, 3, 2, 4]), -1.0, 1.0, &mut rng(0));
        let mat = nchw_to_mat(&x, 2, 3, 2, 4);
        assert_eq!(mat.shape().dims(), &[16, 3]);
        let back = mat_to_nchw(&mat, 2, 3, 2, 4);
        assert_eq!(back, x);
    }

    #[test]
    fn known_values_land_in_right_cells() {
        // n=1, c=2, 1x2 spatial
        let x = Tensor::from_vec(Shape::of(&[1, 2, 1, 2]), vec![1., 2., 3., 4.]).unwrap();
        let mat = nchw_to_mat(&x, 1, 2, 1, 2);
        // row 0 = position 0 → [ch0=1, ch1=3]; row 1 = position 1 → [2, 4]
        assert_eq!(mat.data(), &[1., 3., 2., 4.]);
    }
}
