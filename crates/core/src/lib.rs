//! # stepping-core
//!
//! The primary contribution of *SteppingNet: A Stepping Neural Network with
//! Incremental Accuracy Enhancement* (DATE 2023), reimplemented in pure Rust:
//!
//! * [`SteppingNet`] — a network whose neurons carry subnet [`Assignment`]s;
//!   subnet `k` is the set of neurons assigned `≤ k`, and the structural
//!   legality rule `assign(in) ≤ assign(out)` guarantees the **incremental
//!   property**: results of a smaller subnet are reused verbatim by larger
//!   ones.
//! * [`construct()`](construct()) — the paper's §III-A construction flow: train subnets for
//!   `m` batches, evaluate per-neuron importance
//!   `M_j^i = Σ_k α_k |∂L_k/∂r_j^k|` (eq. 2–3), move the least important
//!   neurons toward larger subnets until every subnet meets its MAC budget,
//!   with non-permanent pruning and weight-update suppression `β^(j−i)`.
//! * [`distill()`](distill()) — §III-B knowledge-distillation retraining with the
//!   combined cost `γ·L_i + (1−γ)·KL(teacher ‖ subnet)` (eq. 4).
//! * [`IncrementalExecutor`] — anytime inference: run the smallest subnet,
//!   then *expand* on newly available resources, computing only the neurons
//!   added by the next subnet.
//!
//! ## Example
//!
//! ```
//! use stepping_core::SteppingNetBuilder;
//! use stepping_tensor::{Shape, Tensor};
//!
//! let mut net = SteppingNetBuilder::new(Shape::of(&[4]), 2, 0)
//!     .linear(8)
//!     .relu()
//!     .build(3)?;
//! // subnet 1 costs at least as many MACs as subnet 0
//! assert!(net.macs(0, 0.0) <= net.macs(1, 0.0));
//! let logits = net.forward(&Tensor::zeros(Shape::of(&[2, 4])), 0, false)?;
//! assert_eq!(logits.shape().dims(), &[2, 3]);
//! # Ok::<(), stepping_core::SteppingError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod assign;
pub mod batch;
pub mod checkpoint;
pub mod construct;
pub mod distill;
mod error;
pub mod eval;
pub mod events;
pub mod hook;
mod incremental;
mod layout;
mod masked_conv;
mod masked_linear;
mod net;
pub mod parallel;
mod plan;
mod stage;
pub mod telemetry;
pub mod train;

pub use assign::Assignment;
pub use batch::{ActivationCache, BatchExecutor};
pub use construct::{
    construct, ConstructionOptions, ConstructionReport, IterationLog, SelectionCriterion,
};
pub use distill::{distill, DistillOptions, DistillReport};
pub use error::SteppingError;
pub use incremental::{ExpandStep, IncrementalExecutor};
pub use masked_conv::MaskedConv2d;
pub use masked_linear::MaskedLinear;
pub use net::{SteppingNet, SteppingNetBuilder};
pub use parallel::{BatchLoss, BatchOutcome, ParallelRunner};
pub use stage::{FixedStage, Stage};
pub use stepping_exec::ParallelConfig;

/// Convenience result alias used across this crate.
pub type Result<T> = std::result::Result<T, SteppingError>;
