//! Checkpointing: compact binary save/restore of a [`SteppingNet`]'s state.
//!
//! A checkpoint captures everything that evolves during the paper's
//! workflow — weights, biases, batch-norm affine parameters *and running
//! statistics*, per-subnet head parameters, and every neuron's subnet
//! assignment — so a constructed-and-distilled network can be deployed
//! without re-running construction.
//!
//! The format is architecture-relative: restoring requires a network built
//! from the same architecture spec (same stages and widths); mismatches are
//! detected and rejected. Layout (little-endian):
//!
//! ```text
//! magic "SNET" | version u32 | subnets u32 | classes u32
//! per stage, in order:
//!   params:   (len u32, f32×len) per parameter (layer order)
//!   bn stats: (len u32, f32×len) mean, then var   (batch-norm stages only)
//!   assign:   (len u32, u16×len)                  (masked stages only)
//! per head: weight then bias as (len u32, f32×len)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use stepping_tensor::{Shape, Tensor};

use crate::{FixedStage, Result, Stage, SteppingError, SteppingNet};

const MAGIC: &[u8; 4] = b"SNET";
const VERSION: u32 = 1;

fn put_tensor(buf: &mut BytesMut, t: &Tensor) {
    buf.put_u32_le(t.len() as u32);
    for &v in t.data() {
        buf.put_f32_le(v);
    }
}

fn take_vec(buf: &mut Bytes, what: &str) -> Result<Vec<f32>> {
    if buf.remaining() < 4 {
        return Err(SteppingError::BadConfig(format!(
            "checkpoint truncated at {what} length"
        )));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len * 4 {
        return Err(SteppingError::BadConfig(format!(
            "checkpoint truncated inside {what}"
        )));
    }
    Ok((0..len).map(|_| buf.get_f32_le()).collect())
}

fn take_into_tensor(buf: &mut Bytes, target: &mut Tensor, what: &str) -> Result<()> {
    let v = take_vec(buf, what)?;
    if v.len() != target.len() {
        return Err(SteppingError::InvalidStructure(format!(
            "checkpoint {what} has {} values, architecture expects {}",
            v.len(),
            target.len()
        )));
    }
    target.data_mut().copy_from_slice(&v);
    Ok(())
}

fn put_assign(buf: &mut BytesMut, values: &[u16]) {
    buf.put_u32_le(values.len() as u32);
    for &v in values {
        buf.put_u16_le(v);
    }
}

fn take_assign(buf: &mut Bytes, expected: usize, what: &str) -> Result<Vec<u16>> {
    if buf.remaining() < 4 {
        return Err(SteppingError::BadConfig(format!(
            "checkpoint truncated at {what} length"
        )));
    }
    let len = buf.get_u32_le() as usize;
    if len != expected || buf.remaining() < len * 2 {
        return Err(SteppingError::InvalidStructure(format!(
            "checkpoint {what} has {len} entries, architecture expects {expected}"
        )));
    }
    Ok((0..len).map(|_| buf.get_u16_le()).collect())
}

/// Serialises the network's full mutable state.
pub fn save_state(net: &mut SteppingNet) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(net.subnet_count() as u32);
    buf.put_u32_le(net.classes() as u32);
    let n_stages = net.stages().len();
    for si in 0..n_stages {
        // parameters
        let param_values: Vec<Tensor> = net.stages_mut()[si]
            .params_mut()
            .iter()
            .map(|p| p.value.clone())
            .collect();
        for v in &param_values {
            put_tensor(&mut buf, v);
        }
        // extra state
        match &net.stages()[si] {
            Stage::Fixed(FixedStage::BatchNorm1d { layer, .. }) => {
                let (m, v) = layer.running_stats();
                put_tensor(&mut buf, m);
                put_tensor(&mut buf, v);
            }
            Stage::Fixed(FixedStage::BatchNorm2d { layer, .. }) => {
                let (m, v) = layer.running_stats();
                put_tensor(&mut buf, m);
                put_tensor(&mut buf, v);
            }
            s => {
                if let Some(a) = s.out_assign() {
                    put_assign(&mut buf, a.values());
                }
            }
        }
    }
    for k in 0..net.subnet_count() {
        // 0..subnet_count is in range by construction; skip rather than
        // panic if that invariant ever breaks (the round-trip verifier
        // would then flag the truncated checkpoint).
        let Ok(head) = net.head(k) else { continue };
        let (w, b) = (head.weight().value.clone(), head.bias().value.clone());
        put_tensor(&mut buf, &w);
        put_tensor(&mut buf, &b);
    }
    buf.freeze()
}

/// Restores state saved by [`save_state`] into a network of the **same
/// architecture** (same stages, widths, subnet count, classes).
///
/// # Errors
///
/// Returns [`SteppingError::BadConfig`] for corrupted/truncated data and
/// [`SteppingError::InvalidStructure`] for architecture mismatches; on error
/// the network may be partially restored and should be discarded.
pub fn load_state(net: &mut SteppingNet, mut data: Bytes) -> Result<()> {
    if data.remaining() < 16 {
        return Err(SteppingError::BadConfig("checkpoint too short".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SteppingError::BadConfig(
            "not a SteppingNet checkpoint".into(),
        ));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(SteppingError::BadConfig(format!(
            "unsupported checkpoint version {version}"
        )));
    }
    let subnets = data.get_u32_le() as usize;
    let classes = data.get_u32_le() as usize;
    if subnets != net.subnet_count() || classes != net.classes() {
        return Err(SteppingError::InvalidStructure(format!(
            "checkpoint is for {subnets} subnets / {classes} classes, network has {} / {}",
            net.subnet_count(),
            net.classes()
        )));
    }
    let n_stages = net.stages().len();
    for si in 0..n_stages {
        {
            let stage = &mut net.stages_mut()[si];
            for p in stage.params_mut() {
                take_into_tensor(&mut data, &mut p.value, "stage parameter")?;
            }
        }
        match &mut net.stages_mut()[si] {
            Stage::Fixed(FixedStage::BatchNorm1d { layer: bn, .. }) => {
                let f = bn.features();
                let m = Tensor::from_vec(Shape::of(&[f]), take_vec(&mut data, "bn mean")?)
                    .map_err(SteppingError::Tensor)?;
                let v = Tensor::from_vec(Shape::of(&[f]), take_vec(&mut data, "bn var")?)
                    .map_err(SteppingError::Tensor)?;
                bn.set_running_stats(m, v).map_err(SteppingError::Nn)?;
            }
            Stage::Fixed(FixedStage::BatchNorm2d { layer: bn, .. }) => {
                let c = bn.channels();
                let m = Tensor::from_vec(Shape::of(&[c]), take_vec(&mut data, "bn mean")?)
                    .map_err(SteppingError::Tensor)?;
                let v = Tensor::from_vec(Shape::of(&[c]), take_vec(&mut data, "bn var")?)
                    .map_err(SteppingError::Tensor)?;
                bn.set_running_stats(m, v).map_err(SteppingError::Nn)?;
            }
            s => {
                if let Some(count) = s.neuron_count() {
                    let assign = take_assign(&mut data, count, "assignment")?;
                    for (o, &a) in assign.iter().enumerate() {
                        s.move_out_neuron(o, a as usize)?;
                    }
                }
            }
        }
    }
    for k in 0..net.subnet_count() {
        let w = take_vec(&mut data, "head weight")?;
        let b = take_vec(&mut data, "head bias")?;
        let head = &mut net.heads_mut()[k];
        if w.len() != head.weight().value.len() || b.len() != head.bias().value.len() {
            return Err(SteppingError::InvalidStructure("head size mismatch".into()));
        }
        head.weight_mut().value.data_mut().copy_from_slice(&w);
        head.bias_mut().value.data_mut().copy_from_slice(&b);
    }
    if data.has_remaining() {
        return Err(SteppingError::BadConfig(format!(
            "{} trailing bytes after checkpoint",
            data.remaining()
        )));
    }
    net.sync_assignments()?;
    // With the `verify-invariants` feature, re-verify the restored
    // stepping structure before handing the network back (no-op otherwise).
    crate::hook::run_if_enabled(net)
}

/// Writes [`save_state`] output to a file.
///
/// # Errors
///
/// Returns [`SteppingError::BadConfig`] wrapping I/O failures.
pub fn save_to_file(net: &mut SteppingNet, path: impl AsRef<std::path::Path>) -> Result<()> {
    let bytes = save_state(net);
    std::fs::write(path, &bytes)
        .map_err(|e| SteppingError::BadConfig(format!("cannot write checkpoint: {e}")))
}

/// Reads a checkpoint file and restores it via [`load_state`].
///
/// # Errors
///
/// Returns [`SteppingError::BadConfig`] wrapping I/O failures and all
/// [`load_state`] errors.
pub fn load_from_file(net: &mut SteppingNet, path: impl AsRef<std::path::Path>) -> Result<()> {
    let data = std::fs::read(path)
        .map_err(|e| SteppingError::BadConfig(format!("cannot read checkpoint: {e}")))?;
    load_state(net, Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SteppingNetBuilder;
    use stepping_tensor::init;

    fn cnn() -> SteppingNet {
        SteppingNetBuilder::new(Shape::of(&[2, 8, 8]), 3, 5)
            .conv(4, 3, 1, 1)
            .batch_norm()
            .relu()
            .max_pool(2, 2)
            .flatten()
            .linear(10)
            .relu()
            .build(3)
            .unwrap()
    }

    fn trained_cnn() -> SteppingNet {
        let mut net = cnn();
        net.move_neurons(&[(0, 1, 1), (0, 3, 2), (5, 2, 1)])
            .unwrap();
        // perturb weights + BN stats so the state is non-trivial
        let x = init::uniform(Shape::of(&[4, 2, 8, 8]), -1.0, 1.0, &mut init::rng(1));
        for _ in 0..3 {
            net.forward(&x, 2, true).unwrap();
        }
        net
    }

    #[test]
    fn save_load_round_trip_is_exact() {
        let mut net = trained_cnn();
        let x = init::uniform(Shape::of(&[2, 2, 8, 8]), -1.0, 1.0, &mut init::rng(2));
        let refs: Vec<Tensor> = (0..3).map(|k| net.forward(&x, k, false).unwrap()).collect();
        let blob = save_state(&mut net);

        let mut fresh = cnn();
        load_state(&mut fresh, blob).unwrap();
        fresh.check_invariants().unwrap();
        for (k, r) in refs.iter().enumerate() {
            assert_eq!(
                &fresh.forward(&x, k, false).unwrap(),
                r,
                "subnet {k} differs"
            );
            assert_eq!(fresh.macs(k, 1e-5), net.macs(k, 1e-5));
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("steppingnet-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.snet");
        let mut net = trained_cnn();
        save_to_file(&mut net, &path).unwrap();
        let mut fresh = cnn();
        load_from_file(&mut fresh, &path).unwrap();
        let x = init::uniform(Shape::of(&[1, 2, 8, 8]), -1.0, 1.0, &mut init::rng(3));
        assert_eq!(
            net.forward(&x, 1, false).unwrap(),
            fresh.forward(&x, 1, false).unwrap()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_and_mismatched_checkpoints_rejected() {
        let mut net = trained_cnn();
        let blob = save_state(&mut net);
        // magic corruption
        let mut bad = blob.to_vec();
        bad[0] = b'X';
        assert!(load_state(&mut cnn(), Bytes::from(bad)).is_err());
        // truncation
        let short = blob.slice(..blob.len() / 2);
        assert!(load_state(&mut cnn(), short).is_err());
        // trailing garbage
        let mut long = blob.to_vec();
        long.push(0);
        assert!(load_state(&mut cnn(), Bytes::from(long)).is_err());
        // architecture mismatch (different widths)
        let mut other = SteppingNetBuilder::new(Shape::of(&[2, 8, 8]), 3, 5)
            .conv(5, 3, 1, 1)
            .batch_norm()
            .relu()
            .max_pool(2, 2)
            .flatten()
            .linear(10)
            .relu()
            .build(3)
            .unwrap();
        assert!(load_state(&mut other, blob).is_err());
    }

    #[test]
    fn subnet_and_class_counts_checked() {
        let mut net = trained_cnn();
        let blob = save_state(&mut net);
        let mut fewer = SteppingNetBuilder::new(Shape::of(&[2, 8, 8]), 2, 5)
            .conv(4, 3, 1, 1)
            .batch_norm()
            .relu()
            .max_pool(2, 2)
            .flatten()
            .linear(10)
            .relu()
            .build(3)
            .unwrap();
        assert!(matches!(
            load_state(&mut fewer, blob),
            Err(SteppingError::InvalidStructure(_))
        ));
    }
}
