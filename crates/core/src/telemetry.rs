//! Process-wide observability hook — the event-emission side of the
//! structured observability layer.
//!
//! `stepping-core` (and `stepping-runtime`, which depends on it) emit
//! structured [`Event`]s from construction, training, and incremental
//! inference without depending on the sink crate (`stepping-obs` depends on
//! us), so — exactly like the invariant gate in [`crate::hook`] — the
//! observer is a process-wide function pointer behind a [`OnceLock`]:
//! `stepping-obs` registers itself via [`install_observer`] and fans events
//! out to its configured sinks.
//!
//! Two switches keep the disabled path free:
//!
//! * **Compile time** — without the `obs` cargo feature every emission
//!   helper compiles to an empty inline function and [`enabled`] is a
//!   constant `false`, so guarded field computation is dead-code-eliminated.
//! * **Run time** — with the feature enabled but no observer installed,
//!   [`enabled`] is a single relaxed atomic load and nothing is formatted
//!   or allocated.
//!
//! Observation is strictly read-only: installing an observer never changes
//! numerical results (asserted by the `noninterference` integration test in
//! `stepping-obs`).

use std::sync::OnceLock;
use std::time::Instant;

/// A single typed field value attached to an [`Event`].
///
/// Values are borrowed and `Copy`, so building a field slice on the stack
/// costs no allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value<'a> {
    /// Unsigned integer (counts, MACs, indices).
    U64(u64),
    /// Signed integer (slack values that may go negative).
    I64(i64),
    /// Floating point (losses, ratios, factors).
    F64(f64),
    /// Borrowed string (labels, policies).
    Str(&'a str),
    /// Boolean flag.
    Bool(bool),
}

/// What kind of occurrence an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An instantaneous structured observation.
    Point,
    /// Completion of a timed span with its elapsed wall time.
    SpanEnd {
        /// Monotonic elapsed time of the span in nanoseconds.
        elapsed_ns: u64,
    },
    /// A monotonic counter increment.
    Counter {
        /// Amount added to the counter.
        delta: u64,
    },
}

/// A borrowed, stack-allocated telemetry event.
///
/// `phase` groups events into the three instrumented layers
/// (`"construction"`, `"training"`, `"inference"`) plus `"report"` for
/// harness output; `name` is a dot-separated identifier such as
/// `construct.iteration`.
#[derive(Debug, Clone, Copy)]
pub struct Event<'a> {
    /// Coarse pipeline phase this event belongs to.
    pub phase: &'a str,
    /// Dot-separated event name, e.g. `"construct.iteration"`.
    pub name: &'a str,
    /// Point, span completion, or counter increment.
    pub kind: EventKind,
    /// Typed key–value payload.
    pub fields: &'a [(&'a str, Value<'a>)],
}

/// Signature of an installable observer: receives every emitted event.
/// Must be cheap and must not re-enter the emitting code.
pub type ObserverHook = fn(&Event<'_>);

static OBSERVER: OnceLock<ObserverHook> = OnceLock::new();

/// Installs `hook` as the process-wide observer.
///
/// The first installation wins for the lifetime of the process; returns
/// `false` (and keeps the existing observer) on later calls.
pub fn install_observer(hook: ObserverHook) -> bool {
    OBSERVER.set(hook).is_ok()
}

/// Whether an observer has been installed (independent of the `obs`
/// feature — useful for harness code deciding how to route output).
pub fn observer_installed() -> bool {
    OBSERVER.get().is_some()
}

/// Whether events currently flow: the `obs` feature is compiled in *and* an
/// observer is installed. Guard any field computation that costs something
/// (formatting, extra walks) behind this.
#[cfg(feature = "obs")]
#[inline]
pub fn enabled() -> bool {
    OBSERVER.get().is_some()
}

/// Whether events currently flow — constant `false` without the `obs`
/// feature, so guarded blocks are removed at compile time.
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub fn enabled() -> bool {
    false
}

/// Emits an event to the installed observer. No-op when the `obs` feature
/// is off or no observer is installed.
#[inline]
pub fn emit(phase: &str, name: &str, kind: EventKind, fields: &[(&str, Value<'_>)]) {
    #[cfg(feature = "obs")]
    if let Some(hook) = OBSERVER.get() {
        hook(&Event {
            phase,
            name,
            kind,
            fields,
        });
    }
    #[cfg(not(feature = "obs"))]
    {
        let _ = (phase, name, kind, fields);
    }
}

/// Emits an instantaneous [`EventKind::Point`] event.
#[inline]
pub fn point(phase: &str, name: &str, fields: &[(&str, Value<'_>)]) {
    emit(phase, name, EventKind::Point, fields);
}

/// Emits an [`EventKind::Counter`] increment of `delta`.
#[inline]
pub fn counter(phase: &str, name: &str, delta: u64, fields: &[(&str, Value<'_>)]) {
    emit(phase, name, EventKind::Counter { delta }, fields);
}

/// A guard that measures a monotonic wall-time span and emits an
/// [`EventKind::SpanEnd`] event when finished.
///
/// Created with [`span`]; finish explicitly with [`SpanGuard::end`] to
/// attach fields, or let it drop to emit with no fields. When observation
/// is disabled the guard holds no timestamp and does nothing.
#[derive(Debug)]
pub struct SpanGuard {
    phase: &'static str,
    name: &'static str,
    start: Option<Instant>,
}

/// Starts a timed span over `phase`/`name`. Timing uses [`Instant`], so
/// elapsed values are monotonic (never negative, nested spans never outlast
/// their parent).
#[inline]
pub fn span(phase: &'static str, name: &'static str) -> SpanGuard {
    SpanGuard {
        phase,
        name,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

impl SpanGuard {
    /// Nanoseconds elapsed so far; `0` when observation is disabled.
    pub fn elapsed_ns(&self) -> u64 {
        self.start
            .map(|s| u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }

    /// Whether this span is live (observation was enabled at creation).
    pub fn is_active(&self) -> bool {
        self.start.is_some()
    }

    /// Ends the span, emitting its `SpanEnd` event with `fields` attached.
    pub fn end(mut self, fields: &[(&str, Value<'_>)]) {
        self.finish(fields);
    }

    fn finish(&mut self, fields: &[(&str, Value<'_>)]) {
        if let Some(start) = self.start.take() {
            let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            emit(
                self.phase,
                self.name,
                EventKind::SpanEnd { elapsed_ns },
                fields,
            );
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish(&[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        // No observer installed in this process (tests that install one live
        // in stepping-obs, a separate test binary).
        let s = span("construction", "test.span");
        if !enabled() {
            assert!(!s.is_active());
            assert_eq!(s.elapsed_ns(), 0);
        }
        s.end(&[("k", Value::U64(1))]);
    }

    #[test]
    fn emit_without_observer_is_a_noop() {
        point("training", "test.point", &[("loss", Value::F64(0.5))]);
        counter("inference", "test.counter", 3, &[]);
    }

    #[test]
    fn value_is_copy_and_comparable() {
        let v = Value::U64(7);
        let w = v;
        assert_eq!(v, w);
        assert_ne!(Value::Bool(true), Value::Bool(false));
    }
}
