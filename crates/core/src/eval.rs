//! Accuracy evaluation of stepping networks.
//!
//! The parallel helpers ([`evaluate_parallel`], [`evaluate_all`]) run on the
//! shared `stepping-exec` worker pool instead of ad-hoc scoped threads:
//! worker panics surface as typed [`SteppingError::Worker`] values rather
//! than aborting via `JoinHandle::join().expect(..)`. Because pool jobs are
//! `'static`, the evaluated batches are materialised on the calling thread
//! and shipped to the workers as owned tensors.

use std::sync::Arc;

use stepping_data::{BatchIter, Dataset, Split};
use stepping_exec::{ExecPool, Job};
use stepping_nn::metrics;

use crate::{Result, SteppingError, SteppingNet};

/// Top-1 accuracy of `subnet` on a dataset split (inference mode).
///
/// # Errors
///
/// Returns [`SteppingError::BadConfig`] for a zero batch size or an empty
/// split, and propagates forward errors.
///
/// # Example
///
/// ```
/// use stepping_core::{eval::evaluate, SteppingNetBuilder};
/// use stepping_data::{GaussianBlobs, GaussianBlobsConfig, Split};
/// use stepping_tensor::Shape;
///
/// let data = GaussianBlobs::new(GaussianBlobsConfig::default(), 1)?;
/// let mut net = SteppingNetBuilder::new(Shape::of(&[16]), 2, 0)
///     .linear(8).relu().build(4)?;
/// let acc = evaluate(&mut net, &data, Split::Test, 0, 32)?;
/// assert!((0.0..=1.0).contains(&acc));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn evaluate(
    net: &mut SteppingNet,
    data: &dyn Dataset,
    split: Split,
    subnet: usize,
    batch_size: usize,
) -> Result<f32> {
    if batch_size == 0 {
        return Err(SteppingError::BadConfig(
            "batch size must be nonzero".into(),
        ));
    }
    if data.is_empty(split) {
        return Err(SteppingError::BadConfig(
            "cannot evaluate on an empty split".into(),
        ));
    }
    let mut correct = 0.0f64;
    let mut total = 0usize;
    // epoch/seed 0: evaluation order does not matter, but keep it stable.
    for batch in BatchIter::new(data, split, batch_size, 0, 0) {
        let (x, y) = batch?;
        let logits = net.forward(&x, subnet, false)?;
        let acc = metrics::accuracy(&logits, &y).map_err(SteppingError::Nn)?;
        correct += acc as f64 * y.len() as f64;
        total += y.len();
    }
    Ok((correct / total as f64) as f32)
}

/// Top-1 accuracy of `subnet` on a split, sharded across `threads` worker
/// threads of a `stepping-exec` pool (each job works on a cloned network, so
/// batch-norm inference caches don't interfere). Produces the same value as
/// [`evaluate`].
///
/// # Errors
///
/// Returns [`SteppingError::BadConfig`] for zero `threads`/`batch_size` or
/// an empty split, propagates forward errors from any worker, and reports a
/// worker panic as [`SteppingError::Worker`].
pub fn evaluate_parallel(
    net: &SteppingNet,
    data: &dyn Dataset,
    split: Split,
    subnet: usize,
    batch_size: usize,
    threads: usize,
) -> Result<f32> {
    if batch_size == 0 || threads == 0 {
        return Err(SteppingError::BadConfig(
            "batch size and threads must be nonzero".into(),
        ));
    }
    let len = data.len(split);
    if len == 0 {
        return Err(SteppingError::BadConfig(
            "cannot evaluate on an empty split".into(),
        ));
    }
    let master = Arc::new(net.clone());
    let shard = len.div_ceil(threads);
    let pool = ExecPool::new(threads);
    let mut jobs: Vec<Job<Result<(usize, usize)>>> = Vec::new();
    for t in 0..threads {
        let lo = t * shard;
        let hi = ((t + 1) * shard).min(len);
        if lo >= hi {
            continue;
        }
        // Materialise this shard's batches on the calling thread: pool jobs
        // are 'static and must not borrow the dataset.
        let mut batches = Vec::with_capacity((hi - lo).div_ceil(batch_size));
        let mut i = lo;
        while i < hi {
            let end = (i + batch_size).min(hi);
            let idx: Vec<usize> = (i..end).collect();
            batches.push(data.batch(split, &idx)?);
            i = end;
        }
        let m = Arc::clone(&master);
        jobs.push(Box::new(move || -> Result<(usize, usize)> {
            let mut worker = (*m).clone();
            let mut correct = 0usize;
            let mut total = 0usize;
            for (x, y) in &batches {
                let logits = worker.forward(x, subnet, false)?;
                let preds = metrics::predictions(&logits).map_err(SteppingError::Nn)?;
                correct += preds.iter().zip(y.iter()).filter(|(p, t)| p == t).count();
                total += y.len();
            }
            Ok((correct, total))
        }));
    }
    let mut correct = 0usize;
    let mut total = 0usize;
    for r in pool.run(jobs)? {
        let (c, t) = r?;
        correct += c;
        total += t;
    }
    Ok(correct as f32 / total as f32)
}

/// Accuracy of every subnet on a split, smallest first. Subnets are
/// evaluated as independent jobs on a `stepping-exec` pool (one worker per
/// subnet, capped by the machine's available parallelism); each value is
/// identical to a sequential [`evaluate`] call because every job clones the
/// network and replays the same deterministic batch order.
///
/// # Errors
///
/// Propagates [`evaluate`] errors; reports a worker panic as
/// [`SteppingError::Worker`].
pub fn evaluate_all(
    net: &mut SteppingNet,
    data: &dyn Dataset,
    split: Split,
    batch_size: usize,
) -> Result<Vec<f32>> {
    if batch_size == 0 {
        return Err(SteppingError::BadConfig(
            "batch size must be nonzero".into(),
        ));
    }
    if data.is_empty(split) {
        return Err(SteppingError::BadConfig(
            "cannot evaluate on an empty split".into(),
        ));
    }
    // Materialise the split's batches once (deterministic epoch/seed-0
    // order, as in `evaluate`) and share them read-only across the jobs.
    let mut batches = Vec::new();
    for batch in BatchIter::new(data, split, batch_size, 0, 0) {
        batches.push(batch?);
    }
    let batches = Arc::new(batches);
    let master = Arc::new(net.clone());
    let subnets = net.subnet_count();
    let workers =
        subnets.min(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get));
    let pool = ExecPool::new(workers);
    let jobs: Vec<Job<Result<f32>>> = (0..subnets)
        .map(|k| {
            let m = Arc::clone(&master);
            let batches = Arc::clone(&batches);
            Box::new(move || -> Result<f32> {
                let mut worker = (*m).clone();
                let mut correct = 0.0f64;
                let mut total = 0usize;
                for (x, y) in batches.iter() {
                    let logits = worker.forward(x, k, false)?;
                    let acc = metrics::accuracy(&logits, y).map_err(SteppingError::Nn)?;
                    correct += acc as f64 * y.len() as f64;
                    total += y.len();
                }
                Ok((correct / total as f64) as f32)
            }) as Job<Result<f32>>
        })
        .collect();
    pool.run(jobs)?.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_subnet, TrainOptions};
    use crate::SteppingNetBuilder;
    use stepping_data::{GaussianBlobs, GaussianBlobsConfig};
    use stepping_tensor::Shape;

    fn data() -> GaussianBlobs {
        GaussianBlobs::new(
            GaussianBlobsConfig {
                classes: 3,
                features: 8,
                train_per_class: 40,
                test_per_class: 15,
                separation: 4.0,
                noise_std: 0.5,
            },
            11,
        )
        .unwrap()
    }

    #[test]
    fn trained_net_beats_chance() {
        let d = data();
        let mut net = SteppingNetBuilder::new(Shape::of(&[8]), 2, 5)
            .linear(16)
            .relu()
            .build(3)
            .unwrap();
        train_subnet(
            &mut net,
            &d,
            0,
            &TrainOptions {
                epochs: 10,
                lr: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        let acc = evaluate(&mut net, &d, Split::Test, 0, 16).unwrap();
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn evaluate_all_returns_one_entry_per_subnet() {
        let d = data();
        let mut net = SteppingNetBuilder::new(Shape::of(&[8]), 3, 5)
            .linear(6)
            .relu()
            .build(3)
            .unwrap();
        let accs = evaluate_all(&mut net, &d, Split::Test, 16).unwrap();
        assert_eq!(accs.len(), 3);
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let d = data();
        let mut net = SteppingNetBuilder::new(Shape::of(&[8]), 2, 5)
            .linear(16)
            .relu()
            .build(3)
            .unwrap();
        train_subnet(
            &mut net,
            &d,
            0,
            &TrainOptions {
                epochs: 4,
                lr: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        let seq = evaluate(&mut net, &d, Split::Test, 0, 7).unwrap();
        for threads in [1usize, 2, 4, 16] {
            let par = evaluate_parallel(&net, &d, Split::Test, 0, 7, threads).unwrap();
            assert!(
                (par - seq).abs() < 1e-6,
                "threads {threads}: {par} vs {seq}"
            );
        }
        assert!(evaluate_parallel(&net, &d, Split::Test, 0, 7, 0).is_err());
        assert!(evaluate_parallel(&net, &d, Split::Test, 0, 0, 2).is_err());
    }

    #[test]
    fn bad_batch_size_rejected() {
        let d = data();
        let mut net = SteppingNetBuilder::new(Shape::of(&[8]), 2, 5)
            .linear(6)
            .relu()
            .build(3)
            .unwrap();
        assert!(evaluate(&mut net, &d, Split::Test, 0, 0).is_err());
    }
}
