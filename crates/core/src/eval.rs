//! Accuracy evaluation of stepping networks.

use stepping_data::{BatchIter, Dataset, Split};
use stepping_nn::metrics;

use crate::{Result, SteppingError, SteppingNet};

/// Top-1 accuracy of `subnet` on a dataset split (inference mode).
///
/// # Errors
///
/// Returns [`SteppingError::BadConfig`] for a zero batch size or an empty
/// split, and propagates forward errors.
///
/// # Example
///
/// ```
/// use stepping_core::{eval::evaluate, SteppingNetBuilder};
/// use stepping_data::{GaussianBlobs, GaussianBlobsConfig, Split};
/// use stepping_tensor::Shape;
///
/// let data = GaussianBlobs::new(GaussianBlobsConfig::default(), 1)?;
/// let mut net = SteppingNetBuilder::new(Shape::of(&[16]), 2, 0)
///     .linear(8).relu().build(4)?;
/// let acc = evaluate(&mut net, &data, Split::Test, 0, 32)?;
/// assert!((0.0..=1.0).contains(&acc));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn evaluate(
    net: &mut SteppingNet,
    data: &dyn Dataset,
    split: Split,
    subnet: usize,
    batch_size: usize,
) -> Result<f32> {
    if batch_size == 0 {
        return Err(SteppingError::BadConfig(
            "batch size must be nonzero".into(),
        ));
    }
    if data.is_empty(split) {
        return Err(SteppingError::BadConfig(
            "cannot evaluate on an empty split".into(),
        ));
    }
    let mut correct = 0.0f64;
    let mut total = 0usize;
    // epoch/seed 0: evaluation order does not matter, but keep it stable.
    for batch in BatchIter::new(data, split, batch_size, 0, 0) {
        let (x, y) = batch?;
        let logits = net.forward(&x, subnet, false)?;
        let acc = metrics::accuracy(&logits, &y).map_err(SteppingError::Nn)?;
        correct += acc as f64 * y.len() as f64;
        total += y.len();
    }
    Ok((correct / total as f64) as f32)
}

/// Top-1 accuracy of `subnet` on a split, sharded across `threads` worker
/// threads (each works on a cloned network, so batch-norm inference caches
/// don't interfere). Produces the same value as [`evaluate`].
///
/// # Errors
///
/// Returns [`SteppingError::BadConfig`] for zero `threads`/`batch_size` or
/// an empty split, and propagates forward errors from any worker.
pub fn evaluate_parallel(
    net: &SteppingNet,
    data: &dyn Dataset,
    split: Split,
    subnet: usize,
    batch_size: usize,
    threads: usize,
) -> Result<f32> {
    if batch_size == 0 || threads == 0 {
        return Err(SteppingError::BadConfig(
            "batch size and threads must be nonzero".into(),
        ));
    }
    let len = data.len(split);
    if len == 0 {
        return Err(SteppingError::BadConfig(
            "cannot evaluate on an empty split".into(),
        ));
    }
    let shard = len.div_ceil(threads);
    let results: Vec<Result<(usize, usize)>> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * shard;
            let hi = ((t + 1) * shard).min(len);
            if lo >= hi {
                continue;
            }
            let mut worker = net.clone();
            handles.push(s.spawn(move || -> Result<(usize, usize)> {
                let mut correct = 0usize;
                let mut total = 0usize;
                let mut i = lo;
                while i < hi {
                    let end = (i + batch_size).min(hi);
                    let idx: Vec<usize> = (i..end).collect();
                    let (x, y) = data.batch(split, &idx)?;
                    let logits = worker.forward(&x, subnet, false)?;
                    let preds = metrics::predictions(&logits).map_err(SteppingError::Nn)?;
                    correct += preds.iter().zip(y.iter()).filter(|(p, t)| p == t).count();
                    total += y.len();
                    i = end;
                }
                Ok((correct, total))
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("eval worker panicked"))
            .collect()
    });
    let mut correct = 0usize;
    let mut total = 0usize;
    for r in results {
        let (c, t) = r?;
        correct += c;
        total += t;
    }
    Ok(correct as f32 / total as f32)
}

/// Accuracy of every subnet on a split, smallest first.
///
/// # Errors
///
/// Propagates [`evaluate`] errors.
pub fn evaluate_all(
    net: &mut SteppingNet,
    data: &dyn Dataset,
    split: Split,
    batch_size: usize,
) -> Result<Vec<f32>> {
    (0..net.subnet_count())
        .map(|k| evaluate(net, data, split, k, batch_size))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_subnet, TrainOptions};
    use crate::SteppingNetBuilder;
    use stepping_data::{GaussianBlobs, GaussianBlobsConfig};
    use stepping_tensor::Shape;

    fn data() -> GaussianBlobs {
        GaussianBlobs::new(
            GaussianBlobsConfig {
                classes: 3,
                features: 8,
                train_per_class: 40,
                test_per_class: 15,
                separation: 4.0,
                noise_std: 0.5,
            },
            11,
        )
        .unwrap()
    }

    #[test]
    fn trained_net_beats_chance() {
        let d = data();
        let mut net = SteppingNetBuilder::new(Shape::of(&[8]), 2, 5)
            .linear(16)
            .relu()
            .build(3)
            .unwrap();
        train_subnet(
            &mut net,
            &d,
            0,
            &TrainOptions {
                epochs: 10,
                lr: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        let acc = evaluate(&mut net, &d, Split::Test, 0, 16).unwrap();
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn evaluate_all_returns_one_entry_per_subnet() {
        let d = data();
        let mut net = SteppingNetBuilder::new(Shape::of(&[8]), 3, 5)
            .linear(6)
            .relu()
            .build(3)
            .unwrap();
        let accs = evaluate_all(&mut net, &d, Split::Test, 16).unwrap();
        assert_eq!(accs.len(), 3);
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let d = data();
        let mut net = SteppingNetBuilder::new(Shape::of(&[8]), 2, 5)
            .linear(16)
            .relu()
            .build(3)
            .unwrap();
        train_subnet(
            &mut net,
            &d,
            0,
            &TrainOptions {
                epochs: 4,
                lr: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        let seq = evaluate(&mut net, &d, Split::Test, 0, 7).unwrap();
        for threads in [1usize, 2, 4, 16] {
            let par = evaluate_parallel(&net, &d, Split::Test, 0, 7, threads).unwrap();
            assert!(
                (par - seq).abs() < 1e-6,
                "threads {threads}: {par} vs {seq}"
            );
        }
        assert!(evaluate_parallel(&net, &d, Split::Test, 0, 7, 0).is_err());
        assert!(evaluate_parallel(&net, &d, Split::Test, 0, 0, 2).is_err());
    }

    #[test]
    fn bad_batch_size_rejected() {
        let d = data();
        let mut net = SteppingNetBuilder::new(Shape::of(&[8]), 2, 5)
            .linear(6)
            .relu()
            .build(3)
            .unwrap();
        assert!(evaluate(&mut net, &d, Split::Test, 0, 0).is_err());
    }
}
