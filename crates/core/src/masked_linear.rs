use rand::rngs::StdRng;
use stepping_nn::{Param, ParamLr};
use stepping_tensor::microkernel::PackedB;
use stepping_tensor::pack::{self, PackScratch};
use stepping_tensor::{init, reduce, Shape, Tensor};

use crate::plan::{self, FusedAct, LinearPlan, PlanSet};
use crate::{Assignment, Result, SteppingError};

/// A fully-connected layer whose output neurons carry subnet assignments —
/// the FC building block of a SteppingNet.
///
/// Structural rules enforced here (paper §III-A):
///
/// * **Legality** — weight `w(u→v)` may be nonzero in a forward pass only if
///   `assign(u) ≤ assign(v)`: extra neurons of a larger subnet never feed
///   neurons of a smaller one, so smaller-subnet results stay valid and
///   reusable.
/// * **Synapse removal / revival** — when a neuron moves to a larger subnet,
///   outgoing synapses that become illegal are masked (their stored values
///   are retained); when a later move re-legalises them they resume from the
///   stored value ("the synapses between the neurons are reestablished").
/// * **Non-permanent pruning** — [`MaskedLinear::prune`] zeroes weights whose
///   magnitude is below the threshold; they keep receiving gradient updates
///   and may regrow ("we do not remove these weights permanently").
/// * **Importance accumulation** — the backward pass accumulates
///   `|∂L_k/∂r_j^k| = |Σ_batch ∂L/∂z_j · z_j|` per output neuron per subnet
///   (paper eq. 2), without materialising the virtual gates `r`.
#[derive(Debug, Clone)]
pub struct MaskedLinear {
    weight: Param,
    bias: Param,
    in_assign: Assignment,
    out_assign: Assignment,
    /// Accumulated `|∂L_k/∂r_j^k|`, flattened `[subnet][out]`.
    importance: Vec<f64>,
    cached: Option<CachedForward>,
    /// Compiled packed panels per subnet, dropped whenever weights or
    /// assignments change (see [`crate::plan`]).
    plans: PlanSet<LinearPlan>,
    /// Reusable gather/GEMM buffers for the packed path.
    scratch: PackScratch,
}

#[derive(Debug, Clone)]
struct CachedForward {
    input: Tensor,
    z: Tensor,
    subnet: usize,
}

impl MaskedLinear {
    /// Creates a masked layer with Kaiming-initialised weights; all output
    /// neurons start in subnet 0 (the construction flow initialises subnet1
    /// with the whole network).
    pub fn new(in_features: usize, out_features: usize, subnets: usize, rng: &mut StdRng) -> Self {
        let weight = Param::new(init::kaiming(
            Shape::of(&[out_features, in_features]),
            in_features,
            rng,
        ));
        let bias = Param::new(Tensor::zeros(Shape::of(&[out_features])));
        MaskedLinear {
            weight,
            bias,
            in_assign: Assignment::new(in_features, subnets),
            out_assign: Assignment::new(out_features, subnets),
            importance: vec![0.0; subnets * out_features],
            cached: None,
            plans: PlanSet::default(),
            scratch: PackScratch::new(),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_assign.len()
    }

    /// Output neuron count.
    pub fn out_features(&self) -> usize {
        self.out_assign.len()
    }

    /// Number of subnets.
    pub fn subnet_count(&self) -> usize {
        self.out_assign.subnet_count()
    }

    /// Assignment of the layer's output neurons.
    pub fn out_assign(&self) -> &Assignment {
        &self.out_assign
    }

    /// Assignment of the layer's inputs (mirrors the upstream layer).
    pub fn in_assign(&self) -> &Assignment {
        &self.in_assign
    }

    /// Replaces the input assignment (called by the network when upstream
    /// neurons move).
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::InvalidStructure`] when the length or subnet
    /// count disagrees with the layer geometry.
    pub fn set_in_assign(&mut self, assign: Assignment) -> Result<()> {
        if assign.len() != self.in_features() || assign.subnet_count() != self.subnet_count() {
            return Err(SteppingError::InvalidStructure(format!(
                "in-assignment of {} neurons / {} subnets does not fit layer with {} inputs / {} subnets",
                assign.len(),
                assign.subnet_count(),
                self.in_features(),
                self.subnet_count()
            )));
        }
        self.in_assign = assign;
        self.plans.invalidate("linear");
        Ok(())
    }

    /// Moves output neuron `o` to `target` subnet (or the unused pool).
    ///
    /// # Errors
    ///
    /// Propagates [`Assignment::move_neuron`] errors.
    pub fn move_out_neuron(&mut self, o: usize, target: usize) -> Result<()> {
        self.out_assign.move_neuron(o, target)?;
        self.plans.invalidate("linear");
        Ok(())
    }

    /// Read access to the weight parameter (`[out, in]`).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter. Handing out the borrow
    /// conservatively invalidates compiled plans — the caller may rewrite
    /// weight values.
    pub fn weight_mut(&mut self) -> &mut Param {
        self.plans.invalidate("linear");
        &mut self.weight
    }

    /// Read access to the bias parameter.
    pub fn bias(&self) -> &Param {
        &self.bias
    }

    /// Whether `w[o][i]` is structurally legal (`assign(in) ≤ assign(out)`).
    pub fn is_legal(&self, o: usize, i: usize) -> bool {
        self.in_assign.subnet_of(i) <= self.out_assign.subnet_of(o)
    }

    /// The effective weight matrix for `subnet`: illegal weights and rows of
    /// inactive neurons are zeroed. Legal active rows never read inactive
    /// inputs (legality implies `assign(in) ≤ assign(out) ≤ subnet`), so no
    /// column masking is needed.
    pub fn effective_weight(&self, subnet: usize) -> Tensor {
        let (o_n, i_n) = (self.out_features(), self.in_features());
        let mut w = self.weight.value.clone();
        let wd = w.data_mut();
        for o in 0..o_n {
            let row_active = self.out_assign.is_active(o, subnet);
            let oa = self.out_assign.subnet_of(o);
            for i in 0..i_n {
                if !row_active || self.in_assign.subnet_of(i) > oa {
                    wd[o * i_n + i] = 0.0;
                }
            }
        }
        w
    }

    /// Forward pass for `subnet`: `z = x · W_effᵀ + b_eff` where inactive
    /// neurons produce exactly 0.
    ///
    /// # Errors
    ///
    /// Returns an error for a subnet index out of range or an input of the
    /// wrong width.
    pub fn forward(&mut self, input: &Tensor, subnet: usize, train: bool) -> Result<Tensor> {
        self.check_subnet(subnet)?;
        if input.shape().rank() != 2 || input.shape().dims()[1] != self.in_features() {
            return Err(SteppingError::InvalidStructure(format!(
                "masked linear expects [n, {}], got {}",
                self.in_features(),
                input.shape()
            )));
        }
        let w_eff = self.effective_weight(subnet);
        let mut z = stepping_tensor::matmul::matmul_bt(input, &w_eff)?;
        // Bias only on active neurons so inactive outputs are exactly zero.
        let n = input.shape().dims()[0];
        let o_n = self.out_features();
        {
            let zd = z.data_mut();
            for o in 0..o_n {
                if self.out_assign.is_active(o, subnet) {
                    let b = self.bias.value.data()[o];
                    for b_i in 0..n {
                        zd[b_i * o_n + o] += b;
                    }
                }
            }
        }
        if train {
            self.cached = Some(CachedForward {
                input: input.clone(),
                z: z.clone(),
                subnet,
            });
        } else {
            // Inference never backpropagates: skip the two clones and drop
            // any stale cache so a later `backward` fails loudly instead of
            // silently using old activations.
            self.cached = None;
        }
        Ok(z)
    }

    /// Packed forward pass for `subnet`: computes the same result as
    /// [`MaskedLinear::forward`] (equal under `f32 ==`; see
    /// [`crate::plan`]) but runs a dense GEMM over only the active panel,
    /// compiled on demand and cached until the next weight or assignment
    /// change. Inference-only: the backward cache is not populated.
    ///
    /// # Errors
    ///
    /// Returns an error for a subnet index out of range or an input of the
    /// wrong width.
    pub fn forward_packed(&mut self, input: &Tensor, subnet: usize) -> Result<Tensor> {
        self.packed_pass(input, subnet)
    }

    /// Packed forward pass that **does** populate the backward cache, so a
    /// training step can route through the compiled panel GEMM and still
    /// backpropagate exactly as after a masked forward. Legal because the
    /// packed result equals the masked result under `f32 ==` (the plan
    /// bit-identity guarantee), so the cached `(input, z)` pair — and every
    /// gradient derived from it — is bit-unchanged.
    ///
    /// # Errors
    ///
    /// Returns an error for a subnet index out of range or an input of the
    /// wrong width.
    pub fn forward_train_packed(&mut self, input: &Tensor, subnet: usize) -> Result<Tensor> {
        let z = self.packed_pass(input, subnet)?;
        self.cached = Some(CachedForward {
            input: input.clone(),
            z: z.clone(),
            subnet,
        });
        Ok(z)
    }

    /// Shared packed full pass (no cache bookkeeping).
    fn packed_pass(&mut self, input: &Tensor, subnet: usize) -> Result<Tensor> {
        let i_n = self.in_features();
        if input.shape().rank() != 2 || input.shape().dims()[1] != i_n {
            return Err(SteppingError::InvalidStructure(format!(
                "masked linear expects [n, {i_n}], got {}",
                input.shape()
            )));
        }
        let n = input.shape().dims()[0];
        let o_n = self.out_features();
        let mut out = std::mem::take(&mut self.scratch.out);
        let res =
            self.forward_packed_gathered(input.data(), n, false, subnet, FusedAct::None, &mut out);
        let z = res.map(|out_idx| {
            let mut z = Tensor::zeros(Shape::of(&[n, o_n]));
            pack::scatter_columns(&out, n, &out_idx, z.data_mut(), o_n);
            z
        });
        self.scratch.out = out;
        z
    }

    /// Compiles (if needed) the full plan for `subnet` and reports whether a
    /// panel gathered over columns `idx` can feed
    /// [`MaskedLinear::forward_packed_gathered`] directly (i.e. `idx`
    /// equals the plan's input column list).
    ///
    /// # Errors
    ///
    /// Returns an error for a subnet index out of range.
    pub(crate) fn panel_feeds_full_plan(&mut self, subnet: usize, idx: &[usize]) -> Result<bool> {
        self.check_subnet(subnet)?;
        self.ensure_full_plan(subnet);
        let plan = self
            .plans
            .full(subnet)
            .ok_or_else(|| plan::missing("linear"))?;
        Ok(plan.in_idx == idx)
    }

    /// Core of the fused packed pipeline: runs the full-plan blocked GEMM
    /// for `subnet` with bias (and optionally a zero-preserving activation)
    /// fused into the epilogue, leaving the output *panel*
    /// (`[n, out_idx.len()]`, column order `out_idx`) in `out` and
    /// returning the column list.
    ///
    /// `gathered == false` treats `src` as the full-width activation
    /// `[n, in_features]` and gathers the plan's input columns first;
    /// `gathered == true` treats it as an already-gathered panel in
    /// `plan.in_idx` order (see
    /// [`panel_feeds_full_plan`](Self::panel_feeds_full_plan)), skipping the
    /// gather entirely.
    ///
    /// # Errors
    ///
    /// Returns an error for a subnet index out of range or a `src` extent
    /// that does not match the implied width.
    pub(crate) fn forward_packed_gathered(
        &mut self,
        src: &[f32],
        n: usize,
        gathered: bool,
        subnet: usize,
        act: FusedAct,
        out: &mut Vec<f32>,
    ) -> Result<Vec<usize>> {
        self.check_subnet(subnet)?;
        let i_n = self.in_features();
        self.ensure_full_plan(subnet);
        let plan = self
            .plans
            .full(subnet)
            .ok_or_else(|| plan::missing("linear"))?;
        let width = if gathered { plan.in_idx.len() } else { i_n };
        if src.len() != n * width {
            return Err(SteppingError::InvalidStructure(format!(
                "masked linear packed pass expects [{n}, {width}] input, got {} values",
                src.len()
            )));
        }
        let panel: &[f32] = if gathered {
            src
        } else {
            let _pack_timer = plan::pack_timer();
            pack::gather_columns(src, n, i_n, &plan.in_idx, &mut self.scratch.input);
            &self.scratch.input
        };
        let _gemm_timer = plan::gemm_timer();
        pack::gemm_packed_nt_into(
            panel,
            &plan.weight,
            out,
            n,
            &mut self.scratch.a_pack,
            act.epilogue(&plan.bias),
        );
        Ok(plan.out_idx.clone())
    }

    /// Packed equivalent of [`MaskedLinear::forward_rows`] for the rows
    /// assigned exactly to subnet `k` (the incremental expand step).
    /// Returns `[n, members(k).len()]`, column order matching
    /// `out_assign().members(k)`.
    ///
    /// # Errors
    ///
    /// Returns an error for a subnet index out of range or an input of the
    /// wrong width.
    pub fn forward_step_packed(&mut self, input: &Tensor, k: usize) -> Result<Tensor> {
        self.check_subnet(k)?;
        let i_n = self.in_features();
        if input.shape().rank() != 2 || input.shape().dims()[1] != i_n {
            return Err(SteppingError::InvalidStructure(format!(
                "masked linear expects [n, {i_n}], got {}",
                input.shape()
            )));
        }
        let n = input.shape().dims()[0];
        self.ensure_step_plan(k);
        let plan = self.plans.step(k).ok_or_else(|| plan::missing("linear"))?;
        let rows = plan.out_idx.len();
        let mut out = Tensor::zeros(Shape::of(&[n, rows]));
        if rows == 0 {
            return Ok(out);
        }
        {
            let _pack_timer = plan::pack_timer();
            pack::gather_columns(input.data(), n, i_n, &plan.in_idx, &mut self.scratch.input);
        }
        let _gemm_timer = plan::gemm_timer();
        pack::gemm_packed_nt_slice(
            &self.scratch.input,
            &plan.weight,
            out.data_mut(),
            n,
            &mut self.scratch.a_pack,
            stepping_tensor::microkernel::Epilogue::Bias(&plan.bias),
        );
        Ok(out)
    }

    /// Fused expand step: computes the subnet-`k` step panel (exactly as
    /// [`MaskedLinear::forward_step_packed`]) and scatters it straight into
    /// the matching columns of `target` (`[n, out_features]`, typically a
    /// cached full-width activation) — one gather→GEMM→scatter pass with no
    /// intermediate tensor. Untouched columns of `target` keep their exact
    /// old values.
    ///
    /// # Errors
    ///
    /// Returns an error for a subnet index out of range or input/target of
    /// the wrong shape.
    pub(crate) fn forward_step_packed_into(
        &mut self,
        input: &Tensor,
        k: usize,
        target: &mut Tensor,
    ) -> Result<()> {
        self.check_subnet(k)?;
        let i_n = self.in_features();
        if input.shape().rank() != 2 || input.shape().dims()[1] != i_n {
            return Err(SteppingError::InvalidStructure(format!(
                "masked linear expects [n, {i_n}], got {}",
                input.shape()
            )));
        }
        let n = input.shape().dims()[0];
        let o_n = self.out_features();
        if target.shape().dims() != [n, o_n] {
            return Err(SteppingError::InvalidStructure(format!(
                "step splice target expects [{n}, {o_n}], got {}",
                target.shape()
            )));
        }
        self.ensure_step_plan(k);
        let plan = self.plans.step(k).ok_or_else(|| plan::missing("linear"))?;
        if plan.out_idx.is_empty() {
            return Ok(());
        }
        {
            let _pack_timer = plan::pack_timer();
            pack::gather_columns(input.data(), n, i_n, &plan.in_idx, &mut self.scratch.input);
        }
        {
            let _gemm_timer = plan::gemm_timer();
            pack::gemm_packed_nt_into(
                &self.scratch.input,
                &plan.weight,
                &mut self.scratch.out,
                n,
                &mut self.scratch.a_pack,
                stepping_tensor::microkernel::Epilogue::Bias(&plan.bias),
            );
        }
        pack::scatter_columns(&self.scratch.out, n, &plan.out_idx, target.data_mut(), o_n);
        Ok(())
    }

    /// Current plan-cache epoch; advances on every weight or assignment
    /// mutation. Exposed for invalidation tests and diagnostics.
    pub fn plan_epoch(&self) -> u64 {
        self.plans.epoch()
    }

    /// MAC operations the packed path actually executes for `subnet`: the
    /// dense panel extent `active_out × active_in` (pruned-but-legal
    /// entries still occupy panel slots).
    pub fn packed_macs(&self, subnet: usize) -> u64 {
        (self.out_assign.active_count(subnet) * self.in_assign.active_count(subnet)) as u64
    }

    /// Compiles (or confirms) the full plan for `subnet`.
    fn ensure_full_plan(&mut self, subnet: usize) {
        if self.plans.full(subnet).is_some() {
            plan::note_hit("linear", subnet);
            return;
        }
        let _compile_timer = plan::compile_timer();
        let i_n = self.in_features();
        let out_idx = self.out_assign.active_members(subnet);
        let in_idx = self.in_assign.active_members(subnet);
        let wd = self.weight.value.data();
        let mut weight = vec![0.0f32; out_idx.len() * in_idx.len()];
        for (r, &o) in out_idx.iter().enumerate() {
            let oa = self.out_assign.subnet_of(o);
            let dst = &mut weight[r * in_idx.len()..(r + 1) * in_idx.len()];
            for (d, &i) in dst.iter_mut().zip(in_idx.iter()) {
                // Mirror `effective_weight`: entries from inputs of a larger
                // subnet than this row's owner stay zero.
                if self.in_assign.subnet_of(i) <= oa {
                    *d = wd[o * i_n + i];
                }
            }
        }
        let weight = PackedB::pack_nt(&weight, out_idx.len(), in_idx.len());
        let bias: Vec<f32> = out_idx.iter().map(|&o| self.bias.value.data()[o]).collect();
        plan::note_compile("linear", subnet, out_idx.len(), in_idx.len());
        self.plans.put_full(
            subnet,
            LinearPlan {
                out_idx,
                in_idx,
                weight,
                bias,
            },
        );
    }

    /// Compiles (or confirms) the step plan for subnet `k` (rows assigned
    /// exactly to `k`; every active input at `k` is legal for them).
    fn ensure_step_plan(&mut self, k: usize) {
        if self.plans.step(k).is_some() {
            plan::note_hit("linear", k);
            return;
        }
        let _compile_timer = plan::compile_timer();
        let i_n = self.in_features();
        let out_idx = self.out_assign.members(k);
        let in_idx = self.in_assign.active_members(k);
        let wd = self.weight.value.data();
        let mut weight = vec![0.0f32; out_idx.len() * in_idx.len()];
        for (r, &o) in out_idx.iter().enumerate() {
            let dst = &mut weight[r * in_idx.len()..(r + 1) * in_idx.len()];
            for (d, &i) in dst.iter_mut().zip(in_idx.iter()) {
                *d = wd[o * i_n + i];
            }
        }
        let weight = PackedB::pack_nt(&weight, out_idx.len(), in_idx.len());
        let bias: Vec<f32> = out_idx.iter().map(|&o| self.bias.value.data()[o]).collect();
        plan::note_compile("linear", k, out_idx.len(), in_idx.len());
        self.plans.put_step(
            k,
            LinearPlan {
                out_idx,
                in_idx,
                weight,
                bias,
            },
        );
    }

    /// Computes only the given output `rows` against `input`, using exactly
    /// the same per-row arithmetic as [`MaskedLinear::forward`] — the
    /// incremental executor uses this to evaluate newly added neurons without
    /// recomputing the cached ones. Returns `[n, rows.len()]`.
    ///
    /// # Errors
    ///
    /// Returns structural errors for bad input width or out-of-range rows.
    pub fn forward_rows(&self, input: &Tensor, rows: &[usize], subnet: usize) -> Result<Tensor> {
        self.check_subnet(subnet)?;
        let i_n = self.in_features();
        if input.shape().rank() != 2 || input.shape().dims()[1] != i_n {
            return Err(SteppingError::InvalidStructure(format!(
                "masked linear expects [n, {i_n}], got {}",
                input.shape()
            )));
        }
        let n = input.shape().dims()[0];
        let mut out = Tensor::zeros(Shape::of(&[n, rows.len()]));
        let od = out.data_mut();
        for (ri, &o) in rows.iter().enumerate() {
            if o >= self.out_features() {
                return Err(SteppingError::InvalidStructure(format!(
                    "row {o} out of range"
                )));
            }
            if !self.out_assign.is_active(o, subnet) {
                continue; // inactive rows stay exactly zero, as in `forward`
            }
            let oa = self.out_assign.subnet_of(o);
            // Build the effective row with the same zero pattern as
            // `effective_weight` so the dot product is bit-identical.
            let mut row = vec![0.0f32; i_n];
            for (i, r) in row.iter_mut().enumerate() {
                if self.in_assign.subnet_of(i) <= oa {
                    *r = self.weight.value.data()[o * i_n + i];
                }
            }
            for b in 0..n {
                let x_row = &input.data()[b * i_n..(b + 1) * i_n];
                let mut acc = 0.0f32;
                for (xv, rv) in x_row.iter().zip(row.iter()) {
                    acc += xv * rv;
                }
                od[b * rows.len() + ri] = acc + self.bias.value.data()[o];
            }
        }
        Ok(out)
    }

    /// Backward pass for the subnet used in the last forward: accumulates
    /// masked weight/bias gradients and the per-neuron importance
    /// `|Σ_batch ∂L/∂z_j · z_j|` (paper eq. 2), and returns `∂L/∂x`.
    ///
    /// # Errors
    ///
    /// Returns an error when called before `forward` or with a gradient of
    /// the wrong shape.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cached = self.cached.as_ref().ok_or_else(|| {
            SteppingError::ExecutorState("masked linear backward before forward".into())
        })?;
        if grad_out.shape() != cached.z.shape() {
            return Err(SteppingError::InvalidStructure(format!(
                "masked linear backward expects {}, got {}",
                cached.z.shape(),
                grad_out.shape()
            )));
        }
        let subnet = cached.subnet;
        let (n, o_n, i_n) = (
            cached.input.shape().dims()[0],
            self.out_features(),
            self.in_features(),
        );
        // Importance (eq. 2): per neuron, |Σ_b g·z| for the trained subnet.
        for o in 0..o_n {
            if !self.out_assign.is_active(o, subnet) {
                continue;
            }
            let mut acc = 0.0f64;
            for b in 0..n {
                acc += (grad_out.data()[b * o_n + o] * cached.z.data()[b * o_n + o]) as f64;
            }
            self.importance[subnet * o_n + o] += acc.abs();
        }
        // Masked gradient: only weights that participated in this forward.
        let dw_full = stepping_tensor::matmul::matmul_at(grad_out, &cached.input)?;
        {
            let gd = self.weight.grad.data_mut();
            for o in 0..o_n {
                let row_active = self.out_assign.is_active(o, subnet);
                let oa = self.out_assign.subnet_of(o);
                for i in 0..i_n {
                    if row_active && self.in_assign.subnet_of(i) <= oa {
                        gd[o * i_n + i] += dw_full.data()[o * i_n + i];
                    }
                }
            }
        }
        let db = reduce::sum_rows(grad_out)?;
        {
            let bd = self.bias.grad.data_mut();
            for (o, b) in bd.iter_mut().enumerate().take(o_n) {
                if self.out_assign.is_active(o, subnet) {
                    *b += db.data()[o];
                }
            }
        }
        let w_eff = self.effective_weight(subnet);
        Ok(stepping_tensor::matmul::matmul(grad_out, &w_eff)?)
    }

    /// Trainable parameters (weight then bias), for the optimizer. Handing
    /// out the borrows invalidates compiled plans — an optimizer step will
    /// rewrite the values.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.plans.invalidate("linear");
        vec![&mut self.weight, &mut self.bias]
    }

    /// Non-permanent magnitude pruning: zeroes weights with
    /// `|w| < threshold`; returns how many were zeroed. Pruned weights keep
    /// receiving gradients and may regrow above the threshold.
    pub fn prune(&mut self, threshold: f32) -> usize {
        let mut pruned = 0;
        for w in self.weight.value.data_mut() {
            if *w != 0.0 && w.abs() < threshold {
                *w = 0.0;
                pruned += 1;
            }
        }
        if pruned > 0 {
            self.plans.invalidate("linear");
        }
        pruned
    }

    /// Boolean mask of currently-zeroed weights (`true` = exactly zero),
    /// flattened in weight order. Snapshot before a training round to count
    /// revivals with [`count_revived`](Self::count_revived).
    pub fn zeroed_weights(&self) -> Vec<bool> {
        self.weight.value.data().iter().map(|w| *w == 0.0).collect()
    }

    /// Counts weights that were zero in `before` (a
    /// [`zeroed_weights`](Self::zeroed_weights) snapshot) and now carry
    /// magnitude `>= threshold` — synapses revived by non-permanent pruning.
    pub fn count_revived(&self, before: &[bool], threshold: f32) -> usize {
        self.weight
            .value
            .data()
            .iter()
            .zip(before.iter())
            .filter(|(w, was_zero)| **was_zero && w.abs() >= threshold)
            .count()
    }

    /// MAC operations of `subnet`: legal, unpruned weights into active
    /// neurons. `threshold` is the pruning threshold used for counting.
    pub fn macs(&self, subnet: usize, threshold: f32) -> u64 {
        let (o_n, i_n) = (self.out_features(), self.in_features());
        let mut count = 0u64;
        for o in 0..o_n {
            if !self.out_assign.is_active(o, subnet) {
                continue;
            }
            let oa = self.out_assign.subnet_of(o);
            for i in 0..i_n {
                if self.in_assign.subnet_of(i) <= oa
                    && self.weight.value.data()[o * i_n + i].abs() >= threshold
                {
                    count += 1;
                }
            }
        }
        count
    }

    /// MAC operations contributed by a single output neuron (its incoming
    /// legal, unpruned synapses) — the mass used when selecting neurons to
    /// move.
    pub fn neuron_macs(&self, o: usize, threshold: f32) -> u64 {
        let i_n = self.in_features();
        let oa = self.out_assign.subnet_of(o);
        let mut count = 0u64;
        for i in 0..i_n {
            if self.in_assign.subnet_of(i) <= oa
                && self.weight.value.data()[o * i_n + i].abs() >= threshold
            {
                count += 1;
            }
        }
        count
    }

    /// Accumulated importance of output neuron `o` w.r.t. `subnet`
    /// (`Σ_batches |∂L_subnet/∂r_o|`).
    pub fn importance(&self, subnet: usize, o: usize) -> f64 {
        self.importance[subnet * self.out_features() + o]
    }

    /// The paper's selection criterion
    /// `M_o^i = Σ_{k=i}^{N} α_k |∂L_k/∂r_o^k|` (eq. 3) for neuron `o`
    /// currently in subnet `i`; `alpha` maps subnet index to `α_k`.
    pub fn selection_score(&self, o: usize, alpha: &[f64]) -> f64 {
        let i = self.out_assign.subnet_of(o);
        let n = self.subnet_count();
        if i >= n {
            return f64::INFINITY; // already unused — never selected
        }
        (i..n).map(|k| alpha[k] * self.importance(k, o)).sum()
    }

    /// Clears accumulated importance (call at the start of each construction
    /// iteration, after the structure changed).
    pub fn reset_importance(&mut self) {
        self.importance.fill(0.0);
    }

    /// The raw accumulated importance buffer, flattened `[subnet][out]` —
    /// exported by replica workers so shard contributions can be merged.
    pub fn importance_values(&self) -> &[f64] {
        &self.importance
    }

    /// Adds a merged importance delta (same flattened layout) into this
    /// layer's accumulator.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::InvalidStructure`] on length mismatch.
    pub fn add_importance_values(&mut self, delta: &[f64]) -> Result<()> {
        if delta.len() != self.importance.len() {
            return Err(SteppingError::InvalidStructure(format!(
                "importance delta of {} entries for layer with {}",
                delta.len(),
                self.importance.len()
            )));
        }
        for (a, d) in self.importance.iter_mut().zip(delta.iter()) {
            *a += d;
        }
        Ok(())
    }

    /// Sum of |w| over neuron `o`'s legal incoming synapses — the naive
    /// magnitude criterion the paper's §III-A argues against (used as an
    /// ablation baseline).
    pub fn magnitude_score(&self, o: usize) -> f64 {
        let i_n = self.in_features();
        let oa = self.out_assign.subnet_of(o);
        if oa >= self.subnet_count() {
            return f64::INFINITY; // unused pool — never selected
        }
        (0..i_n)
            .filter(|&i| self.in_assign.subnet_of(i) <= oa)
            .map(|i| self.weight.value.data()[o * i_n + i].abs() as f64)
            .sum()
    }

    /// Installs weight-update suppression for training `subnet`: elements of
    /// rows owned by smaller subnets get learning-rate scale
    /// `β^(subnet − assign)` (paper §III-A2); rows in the unused pool get 0.
    pub fn apply_lr_suppression(&mut self, subnet: usize, beta: f32) {
        let (o_n, i_n) = (self.out_features(), self.in_features());
        let mut wscale = Tensor::ones(Shape::of(&[o_n, i_n]));
        let mut bscale = Tensor::ones(Shape::of(&[o_n]));
        for o in 0..o_n {
            let a = self.out_assign.subnet_of(o);
            let s = if a > subnet {
                0.0 // not part of this subnet: frozen
            } else {
                beta.powi((subnet - a) as i32)
            };
            bscale.data_mut()[o] = s;
            for i in 0..i_n {
                wscale.data_mut()[o * i_n + i] = s;
            }
        }
        self.weight.set_lr_scale(wscale);
        self.bias.set_lr_scale(bscale);
    }

    /// Removes any learning-rate suppression.
    pub fn clear_lr_suppression(&mut self) {
        self.weight.lr = ParamLr::Uniform;
        self.bias.lr = ParamLr::Uniform;
    }

    fn check_subnet(&self, subnet: usize) -> Result<()> {
        if subnet >= self.subnet_count() {
            return Err(SteppingError::SubnetOutOfRange {
                subnet,
                count: self.subnet_count(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepping_tensor::init::rng;

    fn layer() -> MaskedLinear {
        MaskedLinear::new(3, 4, 3, &mut rng(0))
    }

    #[test]
    fn fresh_layer_behaves_like_plain_linear() {
        let mut l = layer();
        let x = init::uniform(Shape::of(&[2, 3]), -1.0, 1.0, &mut rng(1));
        let z = l.forward(&x, 0, true).unwrap();
        // all neurons in subnet 0, all weights legal: matches dense matmul
        let dense = stepping_tensor::matmul::matmul_bt(&x, &l.weight().value).unwrap();
        assert_eq!(z, dense); // bias is zero at init
    }

    #[test]
    fn inactive_neurons_output_exactly_zero() {
        let mut l = layer();
        l.move_out_neuron(2, 1).unwrap();
        l.bias.value.fill(0.5);
        let x = init::uniform(Shape::of(&[2, 3]), -1.0, 1.0, &mut rng(2));
        let z = l.forward(&x, 0, true).unwrap();
        for b in 0..2 {
            assert_eq!(z.data()[b * 4 + 2], 0.0);
            assert_ne!(z.data()[b * 4], 0.0);
        }
    }

    #[test]
    fn legality_masks_weights_from_larger_inputs() {
        let mut l = layer();
        // input 1 belongs to subnet 1; output 0 stays in subnet 0
        let mut ia = Assignment::new(3, 3);
        ia.move_neuron(1, 1).unwrap();
        l.set_in_assign(ia).unwrap();
        let w = l.effective_weight(2);
        // w[0][1] must be zero (illegal), w[0][0] untouched
        assert_eq!(w.data()[1], 0.0);
        assert_eq!(w.data()[0], l.weight().value.data()[0]);
    }

    #[test]
    fn shared_neuron_values_are_identical_across_subnets() {
        // The incremental property: neurons of subnet 0 compute the same
        // values when executed as part of subnet 1.
        let mut l = layer();
        l.move_out_neuron(3, 1).unwrap();
        let x = init::uniform(Shape::of(&[2, 3]), -1.0, 1.0, &mut rng(3));
        let z0 = l.forward(&x, 0, false).unwrap();
        let z1 = l.forward(&x, 1, false).unwrap();
        for b in 0..2 {
            for o in 0..3 {
                assert_eq!(z0.data()[b * 4 + o], z1.data()[b * 4 + o]);
            }
        }
        // and neuron 3 is live only in subnet 1
        assert!(z1.data()[3] != 0.0 || z1.data()[4 + 3] != 0.0);
        assert_eq!(z0.data()[3], 0.0);
    }

    #[test]
    fn forward_rows_matches_forward_bitexact() {
        let mut l = layer();
        l.move_out_neuron(1, 1).unwrap();
        l.move_out_neuron(3, 2).unwrap();
        let mut ia = Assignment::new(3, 3);
        ia.move_neuron(2, 1).unwrap();
        l.set_in_assign(ia).unwrap();
        let x = init::uniform(Shape::of(&[3, 3]), -2.0, 2.0, &mut rng(4));
        let z_full = l.forward(&x, 2, false).unwrap();
        let rows = [1usize, 3];
        let z_rows = l.forward_rows(&x, &rows, 2).unwrap();
        for b in 0..3 {
            for (ri, &o) in rows.iter().enumerate() {
                assert_eq!(z_rows.data()[b * 2 + ri], z_full.data()[b * 4 + o]);
            }
        }
    }

    #[test]
    fn backward_masks_gradients_of_illegal_and_inactive_weights() {
        let mut l = layer();
        l.move_out_neuron(0, 2).unwrap(); // neuron 0 only in subnet 2
        let x = init::uniform(Shape::of(&[2, 3]), -1.0, 1.0, &mut rng(5));
        l.forward(&x, 0, true).unwrap(); // train subnet 0
        let g = Tensor::ones(Shape::of(&[2, 4]));
        l.backward(&g).unwrap();
        // row 0 inactive in subnet 0: no gradient
        for i in 0..3 {
            assert_eq!(l.weight().grad.data()[i], 0.0);
        }
        assert_eq!(l.bias().grad.data()[0], 0.0);
        // row 1 active: gradient present
        assert!(l.weight().grad.data()[3..6].iter().any(|&g| g != 0.0));
    }

    #[test]
    fn importance_accumulates_only_for_trained_subnet() {
        let mut l = layer();
        let x = init::uniform(Shape::of(&[2, 3]), -1.0, 1.0, &mut rng(6));
        l.forward(&x, 0, true).unwrap();
        l.backward(&Tensor::ones(Shape::of(&[2, 4]))).unwrap();
        assert!(l.importance(0, 0) > 0.0);
        assert_eq!(l.importance(1, 0), 0.0);
        l.reset_importance();
        assert_eq!(l.importance(0, 0), 0.0);
    }

    #[test]
    fn selection_score_weights_larger_subnets() {
        let mut l = layer();
        let o_n = l.out_features();
        l.importance[o_n] = 2.0; // subnet 1, neuron 0
        l.importance[0] = 1.0; // subnet 0, neuron 0
        let alpha = [1.0, 1.5, 2.25];
        // neuron 0 in subnet 0: score = 1*1 + 1.5*2 + 2.25*0 = 4
        assert!((l.selection_score(0, &alpha) - 4.0).abs() < 1e-12);
        l.move_out_neuron(0, 3).unwrap(); // unused pool
        assert_eq!(l.selection_score(0, &alpha), f64::INFINITY);
    }

    #[test]
    fn prune_zeroes_small_weights_only() {
        let mut l = layer();
        l.weight_mut().value.data_mut()[0] = 1e-7;
        l.weight_mut().value.data_mut()[1] = 0.5;
        let pruned = l.prune(1e-5);
        assert_eq!(pruned, 1);
        assert_eq!(l.weight().value.data()[0], 0.0);
        assert_eq!(l.weight().value.data()[1], 0.5);
        // pruning again does nothing new
        assert_eq!(l.prune(1e-5), 0);
    }

    #[test]
    fn macs_count_legal_unpruned_active() {
        let mut l = layer();
        // all 12 weights initially active in subnet 0
        assert_eq!(l.macs(0, 0.0), 12);
        l.move_out_neuron(0, 1).unwrap();
        assert_eq!(l.macs(0, 0.0), 9);
        assert_eq!(l.macs(1, 0.0), 12);
        l.weight_mut().value.data_mut()[4] = 0.0; // weight of neuron 1
        assert_eq!(l.macs(0, 1e-5), 8);
        assert_eq!(l.neuron_macs(1, 1e-5), 2);
        // move an input to subnet 2: weights to subnet-0/1 outputs illegal
        let mut ia = Assignment::new(3, 3);
        ia.move_neuron(0, 2).unwrap();
        l.set_in_assign(ia).unwrap();
        // every output row loses its column-0 weight: no row is in subnet 2,
        // so `assign(in)=2 > assign(out)` everywhere (threshold 0 counts the
        // zeroed weight again since |0| >= 0)
        assert_eq!(l.macs(2, 0.0), 12 - 4);
    }

    #[test]
    fn lr_suppression_scales_by_beta_power() {
        let mut l = layer();
        l.move_out_neuron(1, 1).unwrap();
        l.move_out_neuron(2, 2).unwrap();
        l.apply_lr_suppression(2, 0.5);
        // row 0 (subnet 0): β² = 0.25 ; row 1 (subnet 1): β = 0.5 ; row 2: 1
        assert!((l.weight().lr_scale_at(0) - 0.25).abs() < 1e-6);
        assert!((l.weight().lr_scale_at(3) - 0.5).abs() < 1e-6);
        assert!((l.weight().lr_scale_at(6) - 1.0).abs() < 1e-6);
        l.clear_lr_suppression();
        assert_eq!(l.weight().lr_scale_at(0), 1.0);
    }

    #[test]
    fn subnet_bounds_checked() {
        let mut l = layer();
        let x = Tensor::zeros(Shape::of(&[1, 3]));
        assert!(matches!(
            l.forward(&x, 3, true),
            Err(SteppingError::SubnetOutOfRange {
                subnet: 3,
                count: 3
            })
        ));
        assert!(l.forward_rows(&x, &[0], 9).is_err());
    }
}
