use stepping_core::{Result, SteppingError, SteppingNet, SteppingNetBuilder};
use stepping_tensor::conv::ConvGeometry;
use stepping_tensor::Shape;

/// One layer of an [`Architecture`] spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayerSpec {
    /// Masked convolution (`out` filters, square `kernel`, `stride`,
    /// `padding`).
    Conv {
        /// Output filters (before expansion/scaling).
        out: usize,
        /// Square kernel extent.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
    },
    /// Masked fully-connected layer.
    Linear {
        /// Output neurons (before expansion/scaling).
        out: usize,
    },
    /// ReLU activation.
    Relu,
    /// Max pooling.
    MaxPool {
        /// Window extent.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Batch normalisation (1-D or 2-D depending on position).
    BatchNorm,
    /// Inverted dropout.
    Dropout(f32),
    /// Flatten image pipeline to features.
    Flatten,
}

/// A declarative network architecture that can be instantiated as a
/// [`SteppingNet`] at any width-expansion ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct Architecture {
    /// Human-readable name (used in experiment reports).
    pub name: String,
    /// Input sample shape (`[c, h, w]` or `[features]`).
    pub input: Shape,
    /// Output classes.
    pub classes: usize,
    /// Layer stack.
    pub layers: Vec<LayerSpec>,
}

fn scale_width(w: usize, ratio: f64) -> usize {
    ((w as f64 * ratio).round() as usize).max(1)
}

impl Architecture {
    /// LeNet-3C1L (3 conv + 1 FC before the classifier), the Caffe
    /// CIFAR-10-quick style network of Table I, for 3×32×32 inputs.
    pub fn lenet_3c1l(classes: usize) -> Self {
        Architecture {
            name: "LeNet-3C1L".into(),
            input: Shape::of(&[3, 32, 32]),
            classes,
            layers: vec![
                LayerSpec::Conv {
                    out: 32,
                    kernel: 5,
                    stride: 1,
                    padding: 2,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool {
                    kernel: 2,
                    stride: 2,
                },
                LayerSpec::Conv {
                    out: 32,
                    kernel: 5,
                    stride: 1,
                    padding: 2,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool {
                    kernel: 2,
                    stride: 2,
                },
                LayerSpec::Conv {
                    out: 64,
                    kernel: 5,
                    stride: 1,
                    padding: 2,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool {
                    kernel: 2,
                    stride: 2,
                },
                LayerSpec::Flatten,
                LayerSpec::Linear { out: 64 },
                LayerSpec::Relu,
            ],
        }
    }

    /// LeNet-5 (2 conv + 2 FC before the classifier) for 3×32×32 inputs.
    pub fn lenet5(classes: usize) -> Self {
        Architecture {
            name: "LeNet-5".into(),
            input: Shape::of(&[3, 32, 32]),
            classes,
            layers: vec![
                LayerSpec::Conv {
                    out: 6,
                    kernel: 5,
                    stride: 1,
                    padding: 2,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool {
                    kernel: 2,
                    stride: 2,
                },
                LayerSpec::Conv {
                    out: 16,
                    kernel: 5,
                    stride: 1,
                    padding: 0,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool {
                    kernel: 2,
                    stride: 2,
                },
                LayerSpec::Flatten,
                LayerSpec::Linear { out: 120 },
                LayerSpec::Relu,
                LayerSpec::Linear { out: 84 },
                LayerSpec::Relu,
            ],
        }
    }

    /// VGG-16 (13 conv + 1 FC before the classifier) in its CIFAR form
    /// (batch-norm variant, 3×32×32 inputs).
    pub fn vgg16(classes: usize) -> Self {
        let mut layers = Vec::new();
        let blocks: [&[usize]; 5] = [
            &[64, 64],
            &[128, 128],
            &[256, 256, 256],
            &[512, 512, 512],
            &[512, 512, 512],
        ];
        for block in blocks {
            for &out in block {
                layers.push(LayerSpec::Conv {
                    out,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                });
                layers.push(LayerSpec::BatchNorm);
                layers.push(LayerSpec::Relu);
            }
            layers.push(LayerSpec::MaxPool {
                kernel: 2,
                stride: 2,
            });
        }
        layers.push(LayerSpec::Flatten);
        layers.push(LayerSpec::Linear { out: 512 });
        layers.push(LayerSpec::Relu);
        Architecture {
            name: "VGG-16".into(),
            input: Shape::of(&[3, 32, 32]),
            classes,
            layers,
        }
    }

    /// AlexNet adapted to 3×32×32 inputs (the paper's §I motivates the
    /// latency problem with AlexNet's 26 ms on a GTX 1070 Ti).
    pub fn alexnet(classes: usize) -> Self {
        Architecture {
            name: "AlexNet".into(),
            input: Shape::of(&[3, 32, 32]),
            classes,
            layers: vec![
                LayerSpec::Conv {
                    out: 64,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool {
                    kernel: 2,
                    stride: 2,
                },
                LayerSpec::Conv {
                    out: 192,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool {
                    kernel: 2,
                    stride: 2,
                },
                LayerSpec::Conv {
                    out: 384,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
                LayerSpec::Relu,
                LayerSpec::Conv {
                    out: 256,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
                LayerSpec::Relu,
                LayerSpec::Conv {
                    out: 256,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool {
                    kernel: 2,
                    stride: 2,
                },
                LayerSpec::Flatten,
                LayerSpec::Dropout(0.5),
                LayerSpec::Linear { out: 512 },
                LayerSpec::Relu,
                LayerSpec::Dropout(0.5),
                LayerSpec::Linear { out: 256 },
                LayerSpec::Relu,
            ],
        }
    }

    /// A plain MLP over flat features (fast workloads for tests/examples).
    pub fn mlp(input_features: usize, hidden: &[usize], classes: usize) -> Self {
        let mut layers = Vec::new();
        for &h in hidden {
            layers.push(LayerSpec::Linear { out: h });
            layers.push(LayerSpec::Relu);
        }
        Architecture {
            name: format!("MLP-{}", hidden.len()),
            input: Shape::of(&[input_features]),
            classes,
            layers,
        }
    }

    /// Returns a width-scaled copy (all conv/linear widths multiplied by
    /// `ratio`, minimum 1) — used for CPU-sized "mini" variants and for
    /// implementing expansion. Spatial geometry and inputs are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not positive finite.
    pub fn scaled(&self, ratio: f64) -> Architecture {
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "scale ratio must be positive"
        );
        let mut out = self.clone();
        if (ratio - 1.0).abs() > f64::EPSILON {
            out.name = format!("{}@x{ratio}", self.name);
        }
        for l in &mut out.layers {
            match l {
                LayerSpec::Conv { out: w, .. } | LayerSpec::Linear { out: w } => {
                    *w = scale_width(*w, ratio);
                }
                _ => {}
            }
        }
        out
    }

    /// Returns a copy adapted to a different input shape (e.g. smaller
    /// images for CPU-scale experiments).
    pub fn with_input(&self, input: Shape) -> Architecture {
        Architecture {
            input,
            ..self.clone()
        }
    }

    /// Builds a [`SteppingNet`] with `subnets` subnets, seeded weights and
    /// the paper's width `expansion` ratio applied to every conv/linear
    /// layer.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::BadConfig`] for impossible geometry or a
    /// non-positive expansion.
    pub fn build(&self, subnets: usize, seed: u64, expansion: f64) -> Result<SteppingNet> {
        if !(expansion.is_finite() && expansion > 0.0) {
            return Err(SteppingError::BadConfig(format!(
                "expansion ratio {expansion} must be positive"
            )));
        }
        let spec = self.scaled(expansion);
        let mut b = SteppingNetBuilder::new(spec.input.clone(), subnets, seed);
        for l in &spec.layers {
            b = match *l {
                LayerSpec::Conv {
                    out,
                    kernel,
                    stride,
                    padding,
                } => b.conv(out, kernel, stride, padding),
                LayerSpec::Linear { out } => b.linear(out),
                LayerSpec::Relu => b.relu(),
                LayerSpec::MaxPool { kernel, stride } => b.max_pool(kernel, stride),
                LayerSpec::BatchNorm => b.batch_norm(),
                LayerSpec::Dropout(p) => b.dropout(p),
                LayerSpec::Flatten => b.flatten(),
            };
        }
        b.build(self.classes)
    }

    /// MAC operations `M_t` of the unexpanded original network (conv/linear
    /// layers plus the classifier) — the denominator of the paper's
    /// `M_i / M_t` ratios.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::BadConfig`] for inconsistent geometry: an
    /// input that is not rank 1 or 3, an impossible conv/pool geometry, a
    /// linear layer before flattening, or an image-shaped output.
    pub fn reference_macs(&self) -> Result<u64> {
        let mut total = 0u64;
        let dims = self.input.dims();
        let (mut c, mut h, mut w, mut flat) = match dims {
            [c, h, w] => (*c, *h, *w, None),
            [f] => (0, 0, 0, Some(*f)),
            _ => {
                return Err(SteppingError::BadConfig(format!(
                    "architecture input must be [c, h, w] or [features], got {}",
                    self.input
                )))
            }
        };
        for l in &self.layers {
            match *l {
                LayerSpec::Conv {
                    out,
                    kernel,
                    stride,
                    padding,
                } => {
                    let geom = ConvGeometry::new(c, h, w, kernel, kernel, stride, padding)
                        .map_err(|e| SteppingError::BadConfig(format!("conv geometry: {e}")))?;
                    total += geom.macs(out);
                    c = out;
                    h = geom.out_h;
                    w = geom.out_w;
                }
                LayerSpec::MaxPool { kernel, stride } => {
                    let geom = ConvGeometry::new(c, h, w, kernel, kernel, stride, 0)
                        .map_err(|e| SteppingError::BadConfig(format!("pool geometry: {e}")))?;
                    h = geom.out_h;
                    w = geom.out_w;
                }
                LayerSpec::Flatten => {
                    flat = Some(c * h * w);
                }
                LayerSpec::Linear { out } => {
                    let f = flat.ok_or_else(|| {
                        SteppingError::BadConfig("linear requires flatten first".into())
                    })?;
                    total += (f * out) as u64;
                    flat = Some(out);
                }
                LayerSpec::Relu | LayerSpec::BatchNorm | LayerSpec::Dropout(_) => {}
            }
        }
        let f = flat.ok_or_else(|| {
            SteppingError::BadConfig("architecture must end flat (missing Flatten?)".into())
        })?;
        Ok(total + (f * self.classes) as u64)
    }

    /// Absolute MAC budgets from fractions of
    /// [`reference_macs`](Architecture::reference_macs), e.g. Table I's
    /// `10 %/30 %/50 %/85 %`.
    ///
    /// # Errors
    ///
    /// Propagates [`reference_macs`](Architecture::reference_macs) errors.
    pub fn mac_targets(&self, fractions: &[f64]) -> Result<Vec<u64>> {
        let reference = self.reference_macs()?;
        Ok(fractions
            .iter()
            .map(|f| (reference as f64 * f).round() as u64)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet5_reference_macs_match_hand_calculation() {
        // conv1: 32*32 positions × 3*5*5 patch × 6 filters
        let conv1 = 32 * 32 * 75 * 6;
        // conv2 (pad 0 on 16x16): 12*12 × 6*25 × 16
        let conv2 = 12 * 12 * 150 * 16;
        // fc: 16*6*6=576 → 120 → 84 → 10
        let fc = 576 * 120 + 120 * 84 + 84 * 10;
        let arch = Architecture::lenet5(10);
        assert_eq!(arch.reference_macs().unwrap(), (conv1 + conv2 + fc) as u64);
    }

    #[test]
    fn mlp_reference_macs() {
        let arch = Architecture::mlp(8, &[16, 4], 3);
        assert_eq!(
            arch.reference_macs().unwrap(),
            (8 * 16 + 16 * 4 + 4 * 3) as u64
        );
    }

    #[test]
    fn scaled_multiplies_widths_not_geometry() {
        let a = Architecture::lenet5(10);
        let b = a.scaled(2.0);
        match (&a.layers[0], &b.layers[0]) {
            (
                LayerSpec::Conv {
                    out: o1,
                    kernel: k1,
                    ..
                },
                LayerSpec::Conv {
                    out: o2,
                    kernel: k2,
                    ..
                },
            ) => {
                assert_eq!(*o2, o1 * 2);
                assert_eq!(k1, k2);
            }
            _ => unreachable!(),
        }
        assert!(b.reference_macs().unwrap() > a.reference_macs().unwrap() * 2);
    }

    #[test]
    fn build_produces_working_network() {
        let arch = Architecture::lenet_3c1l(10)
            .with_input(Shape::of(&[3, 8, 8]))
            .scaled(0.25);
        let mut net = arch.build(3, 0, 1.8).unwrap();
        assert_eq!(net.subnet_count(), 3);
        let x = stepping_tensor::Tensor::zeros(Shape::of(&[2, 3, 8, 8]));
        let y = net.forward(&x, 0, false).unwrap();
        assert_eq!(y.shape().dims(), &[2, 10]);
        net.check_invariants().unwrap();
    }

    #[test]
    fn expanded_build_has_more_macs_than_reference() {
        let arch = Architecture::mlp(10, &[20], 4);
        let net1 = arch.build(2, 0, 1.0).unwrap();
        let net2 = arch.build(2, 0, 2.0).unwrap();
        assert!(net2.full_macs() > net1.full_macs());
        assert_eq!(net1.full_macs(), arch.reference_macs().unwrap());
    }

    #[test]
    fn mac_targets_scale_with_fractions() {
        let arch = Architecture::mlp(10, &[20], 4);
        let t = arch.mac_targets(&[0.1, 0.5, 1.0]).unwrap();
        assert_eq!(t[2], arch.reference_macs().unwrap());
        assert!(t[0] < t[1] && t[1] < t[2]);
    }

    #[test]
    fn vgg16_has_thirteen_convs() {
        let arch = Architecture::vgg16(100);
        let convs = arch
            .layers
            .iter()
            .filter(|l| matches!(l, LayerSpec::Conv { .. }))
            .count();
        assert_eq!(convs, 13);
        // full VGG-16 on 32x32 ≈ 313M + classifier MACs; sanity band
        let m = arch.reference_macs().unwrap();
        assert!(m > 300_000_000 && m < 350_000_000, "macs {m}");
    }

    #[test]
    fn alexnet_builds_with_dropout() {
        let arch = Architecture::alexnet(10).scaled(0.125);
        let mut net = arch.build(2, 0, 1.0).unwrap();
        let x = stepping_tensor::Tensor::zeros(Shape::of(&[1, 3, 32, 32]));
        let y = net.forward(&x, 0, false).unwrap();
        assert_eq!(y.shape().dims(), &[1, 10]);
        // 5 convs + 2 fcs before the head
        let masked = net.masked_stage_indices().len();
        assert_eq!(masked, 7);
        assert!(arch.reference_macs().unwrap() > 0);
    }

    #[test]
    fn bad_expansion_rejected() {
        let arch = Architecture::mlp(4, &[8], 2);
        assert!(arch.build(2, 0, 0.0).is_err());
        assert!(arch.build(2, 0, f64::NAN).is_err());
    }

    #[test]
    fn inconsistent_geometry_is_a_typed_error_not_a_panic() {
        // rank-2 input
        let arch = Architecture::mlp(4, &[8], 2).with_input(Shape::of(&[4, 4]));
        assert!(matches!(
            arch.reference_macs(),
            Err(SteppingError::BadConfig(_))
        ));
        // linear before flatten on an image pipeline
        let arch = Architecture {
            name: "broken".into(),
            input: Shape::of(&[3, 8, 8]),
            classes: 2,
            layers: vec![LayerSpec::Linear { out: 4 }],
        };
        assert!(matches!(
            arch.reference_macs(),
            Err(SteppingError::BadConfig(_))
        ));
        // image pipeline that never flattens
        let arch = Architecture {
            name: "broken".into(),
            input: Shape::of(&[3, 8, 8]),
            classes: 2,
            layers: vec![LayerSpec::Relu],
        };
        assert!(matches!(
            arch.mac_targets(&[0.5]),
            Err(SteppingError::BadConfig(_))
        ));
    }
}
