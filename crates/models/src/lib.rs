//! # stepping-models
//!
//! Model zoo for the SteppingNet (DATE 2023) reproduction: declarative
//! [`Architecture`] specs for the paper's three test cases — LeNet-3C1L,
//! LeNet-5 and VGG-16 — plus MLPs for fast tests, with the paper's
//! **width expansion** (§IV: "we expanded the number of neurons/filters of
//! each layer in the original network … the corresponding expansion ratios
//! were set to 1.8, 2.0, 1.8").
//!
//! An [`Architecture`] can
//!
//! * [`build`](Architecture::build) a [`stepping_core::SteppingNet`] at any
//!   expansion ratio, and
//! * compute its [`reference_macs`](Architecture::reference_macs) — the MAC
//!   count `M_t` of the *unexpanded* original network, the denominator of
//!   every `M_i/M_t` column in Table I.
//!
//! ## Example
//!
//! ```
//! use stepping_models::Architecture;
//!
//! let arch = Architecture::lenet5(10).scaled(0.25); // CPU-sized variant
//! let net = arch.build(4, 0, 2.0)?; // 4 subnets, expansion ratio 2.0
//! assert_eq!(net.classes(), 10);
//! assert!(net.full_macs() > arch.reference_macs()?); // expanded > original
//! # Ok::<(), stepping_core::SteppingError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arch;

pub use arch::{Architecture, LayerSpec};
