//! Property-based tests of the tensor substrate: algebraic identities that
//! must hold for arbitrary shapes and values.

use proptest::prelude::*;
use stepping_tensor::conv::{col2im, im2col, ConvGeometry};
use stepping_tensor::matmul::GemmSpec;
use stepping_tensor::microkernel::{gemm_blocked, gemm_packed, Epilogue, PackedB};
use stepping_tensor::{matmul, reduce, Shape, Tensor};

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape().dims()[0], a.shape().dims()[1]);
    let n = b.shape().dims()[1];
    let mut out = Tensor::zeros(Shape::of(&[m, n]));
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a.data()[i * k + kk] * b.data()[kk * n + j];
            }
            out.data_mut()[i * n + j] = acc;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn matmul_matches_naive(
        m in 1usize..8, k in 1usize..12, n in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let mut rng = stepping_tensor::init::rng(seed);
        let a = stepping_tensor::init::uniform(Shape::of(&[m, k]), -2.0, 2.0, &mut rng);
        let b = stepping_tensor::init::uniform(Shape::of(&[k, n]), -2.0, 2.0, &mut rng);
        let fast = matmul::matmul(&a, &b).unwrap();
        let slow = naive_matmul(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn matmul_transpose_identities(
        m in 1usize..6, k in 1usize..8, n in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let mut rng = stepping_tensor::init::rng(seed);
        let a = stepping_tensor::init::uniform(Shape::of(&[m, k]), -2.0, 2.0, &mut rng);
        let b = stepping_tensor::init::uniform(Shape::of(&[n, k]), -2.0, 2.0, &mut rng);
        // A·Bᵀ computed directly equals A·(Bᵀ)
        let direct = matmul::matmul_bt(&a, &b).unwrap();
        let via = matmul::matmul(&a, &b.transpose2().unwrap()).unwrap();
        prop_assert_eq!(direct, via);
        // Aᵀ·C identity
        let c = stepping_tensor::init::uniform(Shape::of(&[m, n]), -2.0, 2.0, &mut rng);
        let direct = matmul::matmul_at(&a, &c).unwrap();
        let via = matmul::matmul(&a.transpose2().unwrap(), &c).unwrap();
        prop_assert_eq!(direct, via);
    }

    #[test]
    fn transpose_is_involutive(
        r in 1usize..10, c in 1usize..10, data_seed in 0u64..10_000,
    ) {
        let mut rng = stepping_tensor::init::rng(data_seed);
        let t = stepping_tensor::init::uniform(Shape::of(&[r, c]), -5.0, 5.0, &mut rng);
        prop_assert_eq!(t.transpose2().unwrap().transpose2().unwrap(), t);
    }

    #[test]
    fn softmax_rows_are_distributions(
        n in 1usize..6, c in 1usize..10, vals_seed in 0u64..10_000,
    ) {
        let mut rng = stepping_tensor::init::rng(vals_seed);
        let t = stepping_tensor::init::uniform(Shape::of(&[n, c]), -30.0, 30.0, &mut rng);
        let p = reduce::softmax_rows(&t).unwrap();
        prop_assert!(p.is_finite());
        for i in 0..n {
            let row = p.row(i).unwrap();
            prop_assert!(row.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
            prop_assert!((row.sum() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_is_shift_invariant(
        c in 2usize..8, shift in -20.0f32..20.0, seed in 0u64..10_000,
    ) {
        let mut rng = stepping_tensor::init::rng(seed);
        let t = stepping_tensor::init::uniform(Shape::of(&[1, c]), -3.0, 3.0, &mut rng);
        let shifted = t.map(|v| v + shift);
        let p1 = reduce::softmax_rows(&t).unwrap();
        let p2 = reduce::softmax_rows(&shifted).unwrap();
        for (a, b) in p1.data().iter().zip(p2.data().iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn im2col_col2im_adjointness(
        c in 1usize..4, h in 3usize..8, w in 3usize..8,
        k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        seed in 0u64..10_000,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let geom = ConvGeometry::new(c, h, w, k, k, stride, pad).unwrap();
        let mut rng = stepping_tensor::init::rng(seed);
        let x = stepping_tensor::init::uniform(Shape::of(&[2, c, h, w]), -1.0, 1.0, &mut rng);
        let y = stepping_tensor::init::uniform(
            Shape::of(&[2 * geom.positions(), geom.patch_len()]), -1.0, 1.0, &mut rng);
        // <im2col(x), y> == <x, col2im(y)>
        let lhs = im2col(&x, &geom).unwrap().dot(&y).unwrap();
        let rhs = x.dot(&col2im(&y, 2, &geom).unwrap()).unwrap();
        let scale = lhs.abs().max(rhs.abs()).max(1.0);
        prop_assert!((lhs - rhs).abs() / scale < 1e-4, "{} vs {}", lhs, rhs);
    }

    /// The blocked, register-tiled microkernel must be bit-identical
    /// (`f32 ==`, not approximate) to the reference streaming kernels for
    /// every transpose variant, including shapes that are ragged against
    /// the MR/NR register tile and deep enough to force a Kc partial-sum
    /// spill, plus fully degenerate extents.
    #[test]
    fn blocked_gemm_bit_identical_to_reference(
        m in 0usize..21, k in 0usize..280, n in 0usize..21,
        which in 0usize..4,
        seed in 0u64..10_000,
    ) {
        let spec = [GemmSpec::NN, GemmSpec::NT, GemmSpec::TN, GemmSpec::TT][which];
        let a_dims = if spec.trans_a { [k, m] } else { [m, k] };
        let b_dims = if spec.trans_b { [n, k] } else { [k, n] };
        let mut rng = stepping_tensor::init::rng(seed);
        let a = stepping_tensor::init::uniform(Shape::of(&a_dims), -2.0, 2.0, &mut rng);
        let b = stepping_tensor::init::uniform(Shape::of(&b_dims), -2.0, 2.0, &mut rng);
        let reference = matmul::gemm(&a, &b, spec).unwrap();
        let blocked = gemm_blocked(&a, &b, spec).unwrap();
        prop_assert_eq!(reference, blocked, "{:?} {}x{}x{}", spec, m, k, n);
    }

    /// Fused bias/activation epilogues must equal the unfused sequence
    /// (GEMM, then add bias, then activate) bitwise — the packed inference
    /// pipeline relies on this to stay `==` with the masked oracle.
    #[test]
    fn blocked_gemm_epilogues_match_unfused(
        m in 1usize..10, k in 1usize..64, n in 1usize..17,
        seed in 0u64..10_000,
    ) {
        let mut rng = stepping_tensor::init::rng(seed);
        let a = stepping_tensor::init::uniform(Shape::of(&[m, k]), -2.0, 2.0, &mut rng);
        let b = stepping_tensor::init::uniform(Shape::of(&[n, k]), -2.0, 2.0, &mut rng);
        let bias = stepping_tensor::init::uniform(Shape::of(&[n]), -1.0, 1.0, &mut rng);
        let packed = PackedB::pack_nt(b.data(), n, k);
        let mut apack = Vec::new();
        let reference = matmul::matmul_bt(&a, &b).unwrap();
        for which in 0..3 {
            let epi = match which {
                0 => Epilogue::Bias(bias.data()),
                1 => Epilogue::BiasRelu(bias.data()),
                _ => Epilogue::BiasTanh(bias.data()),
            };
            let mut out = vec![f32::NAN; m * n];
            gemm_packed(a.data(), false, &packed, &mut out, m, &mut apack, epi);
            for i in 0..m {
                for j in 0..n {
                    let z = reference.data()[i * n + j] + bias.data()[j];
                    let want = match which {
                        0 => z,
                        1 => z.max(0.0),
                        _ => z.tanh(),
                    };
                    prop_assert_eq!(
                        out[i * n + j], want,
                        "epilogue {} at ({}, {})", which, i, j
                    );
                }
            }
        }
    }

    #[test]
    fn axpy_matches_zip(
        len in 1usize..64, alpha in -3.0f32..3.0,
        a in tensor_strategy(64), b in tensor_strategy(64),
    ) {
        let av = Tensor::from_vec(Shape::of(&[len]), a[..len].to_vec()).unwrap();
        let bv = Tensor::from_vec(Shape::of(&[len]), b[..len].to_vec()).unwrap();
        let mut c = av.clone();
        c.axpy(alpha, &bv).unwrap();
        let expected = av.zip(&bv, |x, y| x + alpha * y).unwrap();
        for (x, y) in c.data().iter().zip(expected.data().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }
}
