//! Reductions and normalisation helpers over rank-2 tensors.
//!
//! The `stepping-nn` losses and batch-norm layers are written against these
//! per-axis primitives. Rows are samples, columns are features/classes.

use crate::{Result, Shape, Tensor, TensorError};

fn check2(t: &Tensor) -> Result<(usize, usize)> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.shape().rank(),
        });
    }
    Ok((t.shape().dims()[0], t.shape().dims()[1]))
}

/// Sums over rows: `[n, c] → [c]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrices.
pub fn sum_rows(t: &Tensor) -> Result<Tensor> {
    let (n, c) = check2(t)?;
    let mut out = Tensor::zeros(Shape::of(&[c]));
    let od = out.data_mut();
    for i in 0..n {
        for (j, o) in od.iter_mut().enumerate() {
            *o += t.data()[i * c + j];
        }
    }
    Ok(out)
}

/// Means over rows: `[n, c] → [c]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrices or
/// [`TensorError::InvalidArgument`] when the matrix has zero rows.
pub fn mean_rows(t: &Tensor) -> Result<Tensor> {
    let (n, _) = check2(t)?;
    if n == 0 {
        return Err(TensorError::InvalidArgument("mean over zero rows".into()));
    }
    let mut s = sum_rows(t)?;
    s.scale(1.0 / n as f32);
    Ok(s)
}

/// Per-column variance (biased, matching batch-norm convention):
/// `[n, c] → [c]`.
///
/// # Errors
///
/// Same conditions as [`mean_rows`].
pub fn var_rows(t: &Tensor, mean: &Tensor) -> Result<Tensor> {
    let (n, c) = check2(t)?;
    if n == 0 {
        return Err(TensorError::InvalidArgument(
            "variance over zero rows".into(),
        ));
    }
    if mean.shape().dims() != [c] {
        return Err(TensorError::ShapeMismatch {
            expected: Shape::of(&[c]),
            actual: mean.shape().clone(),
        });
    }
    let mut out = Tensor::zeros(Shape::of(&[c]));
    let od = out.data_mut();
    for i in 0..n {
        for (j, o) in od.iter_mut().enumerate() {
            let d = t.data()[i * c + j] - mean.data()[j];
            *o += d * d;
        }
    }
    for o in od.iter_mut() {
        *o /= n as f32;
    }
    Ok(out)
}

/// Row-wise numerically-stable softmax: `[n, c] → [n, c]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrices.
///
/// # Example
///
/// ```
/// use stepping_tensor::{reduce::softmax_rows, Shape, Tensor};
///
/// let logits = Tensor::from_vec(Shape::of(&[1, 3]), vec![1.0, 2.0, 3.0])?;
/// let p = softmax_rows(&logits)?;
/// assert!((p.row(0)?.sum() - 1.0).abs() < 1e-6);
/// # Ok::<(), stepping_tensor::TensorError>(())
/// ```
pub fn softmax_rows(t: &Tensor) -> Result<Tensor> {
    let (n, c) = check2(t)?;
    let mut out = t.clone();
    let od = out.data_mut();
    for i in 0..n {
        let row = &mut od[i * c..(i + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            z += *v;
        }
        for v in row.iter_mut() {
            *v /= z;
        }
    }
    Ok(out)
}

/// Row-wise log-softmax: `[n, c] → [n, c]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrices.
pub fn log_softmax_rows(t: &Tensor) -> Result<Tensor> {
    let (n, c) = check2(t)?;
    let mut out = t.clone();
    let od = out.data_mut();
    for i in 0..n {
        let row = &mut od[i * c..(i + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let z: f32 = row.iter().map(|&v| (v - m).exp()).sum();
        let lz = z.ln() + m;
        for v in row.iter_mut() {
            *v -= lz;
        }
    }
    Ok(out)
}

/// Row-wise argmax: `[n, c] → Vec<usize>` of length `n`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrices or
/// [`TensorError::InvalidArgument`] for zero columns.
pub fn argmax_rows(t: &Tensor) -> Result<Vec<usize>> {
    let (n, c) = check2(t)?;
    if c == 0 {
        return Err(TensorError::InvalidArgument(
            "argmax over zero columns".into(),
        ));
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let row = &t.data()[i * c..(i + 1) * c];
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        out.push(best);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Tensor {
        Tensor::from_vec(Shape::of(&[2, 3]), vec![1., 2., 3., 4., 5., 6.]).unwrap()
    }

    #[test]
    fn sum_and_mean_rows() {
        assert_eq!(sum_rows(&m()).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(mean_rows(&m()).unwrap().data(), &[2.5, 3.5, 4.5]);
    }

    #[test]
    fn var_rows_matches_hand_calc() {
        let t = m();
        let mu = mean_rows(&t).unwrap();
        let v = var_rows(&t, &mu).unwrap();
        // each column is {x, x+3} → variance 2.25
        for &x in v.data() {
            assert!((x - 2.25).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_rows_sums_to_one_and_is_stable() {
        let t = Tensor::from_vec(Shape::of(&[1, 3]), vec![1000.0, 1001.0, 1002.0]).unwrap();
        let p = softmax_rows(&t).unwrap();
        assert!(p.is_finite());
        assert!((p.sum() - 1.0).abs() < 1e-5);
        assert!(p.data()[2] > p.data()[1] && p.data()[1] > p.data()[0]);
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let t = m();
        let p = softmax_rows(&t).unwrap();
        let lp = log_softmax_rows(&t).unwrap();
        for (a, b) in p.data().iter().zip(lp.data().iter()) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_rows_picks_last_max_only_if_strictly_greater() {
        let t = Tensor::from_vec(Shape::of(&[2, 3]), vec![1., 3., 3., 9., 1., 1.]).unwrap();
        assert_eq!(argmax_rows(&t).unwrap(), vec![1, 0]);
    }

    #[test]
    fn rank_errors() {
        let v = Tensor::zeros(Shape::of(&[3]));
        assert!(sum_rows(&v).is_err());
        assert!(softmax_rows(&v).is_err());
        assert!(argmax_rows(&v).is_err());
    }
}
