//! `im2col`/`col2im` based 2-D convolution geometry and kernels.
//!
//! Layout conventions (all row-major):
//! * activations: `[batch, channels, height, width]` (NCHW),
//! * conv weights: `[out_channels, in_channels, kh, kw]`,
//! * `im2col` patch matrix: `[batch * oh * ow, in_channels * kh * kw]`.
//!
//! With these layouts a convolution forward pass is a single
//! [`matmul_bt`](crate::matmul::matmul_bt) against the flattened weights,
//! which is exactly how the `Conv2d` layer in `stepping-nn` is implemented.

use serde::{Deserialize, Serialize};

use crate::{Result, Shape, Tensor, TensorError};

/// Static geometry of a 2-D convolution or pooling window.
///
/// # Example
///
/// ```
/// use stepping_tensor::conv::ConvGeometry;
///
/// let g = ConvGeometry::new(3, 32, 32, 3, 3, 1, 1)?;
/// assert_eq!((g.out_h, g.out_w), (32, 32)); // "same" padding
/// # Ok::<(), stepping_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all four sides).
    pub padding: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl ConvGeometry {
    /// Computes output extents for the given window parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when the stride is zero or
    /// the (padded) input is smaller than the kernel.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self> {
        if stride == 0 {
            return Err(TensorError::InvalidGeometry(
                "stride must be nonzero".into(),
            ));
        }
        if kernel_h == 0 || kernel_w == 0 {
            return Err(TensorError::InvalidGeometry(
                "kernel extents must be nonzero".into(),
            ));
        }
        let padded_h = in_h + 2 * padding;
        let padded_w = in_w + 2 * padding;
        if padded_h < kernel_h || padded_w < kernel_w {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel {kernel_h}x{kernel_w} exceeds padded input {padded_h}x{padded_w}"
            )));
        }
        Ok(ConvGeometry {
            in_channels,
            in_h,
            in_w,
            kernel_h,
            kernel_w,
            stride,
            padding,
            out_h: (padded_h - kernel_h) / stride + 1,
            out_w: (padded_w - kernel_w) / stride + 1,
        })
    }

    /// Number of columns of the `im2col` patch matrix
    /// (`in_channels * kernel_h * kernel_w`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }

    /// Number of output spatial positions per image (`out_h * out_w`).
    pub fn positions(&self) -> usize {
        self.out_h * self.out_w
    }

    /// MAC operations of a full (unmasked, unpruned) convolution with
    /// `out_channels` filters over one input image.
    pub fn macs(&self, out_channels: usize) -> u64 {
        (self.positions() * self.patch_len() * out_channels) as u64
    }
}

/// Unfolds NCHW input into the `im2col` patch matrix.
///
/// Output shape: `[batch * out_h * out_w, patch_len]`; rows are ordered
/// batch-major, then row-major over output positions.
///
/// # Errors
///
/// Returns a shape error when the input is not `[n, c, h, w]` matching `geom`.
pub fn im2col(input: &Tensor, geom: &ConvGeometry) -> Result<Tensor> {
    let dims = input.shape().dims();
    if dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: dims.len(),
        });
    }
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    if c != geom.in_channels || h != geom.in_h || w != geom.in_w {
        return Err(TensorError::ShapeMismatch {
            expected: Shape::of(&[n, geom.in_channels, geom.in_h, geom.in_w]),
            actual: input.shape().clone(),
        });
    }
    let patch = geom.patch_len();
    let rows = n * geom.positions();
    let mut out = Tensor::zeros(Shape::of(&[rows, patch]));
    let src = input.data();
    let dst = out.data_mut();
    let pad = geom.padding as isize;
    for b in 0..n {
        for oy in 0..geom.out_h {
            for ox in 0..geom.out_w {
                let row = (b * geom.positions() + oy * geom.out_w + ox) * patch;
                let iy0 = (oy * geom.stride) as isize - pad;
                let ix0 = (ox * geom.stride) as isize - pad;
                let mut col = 0;
                for ch in 0..c {
                    let base = (b * c + ch) * h * w;
                    for ky in 0..geom.kernel_h {
                        let iy = iy0 + ky as isize;
                        for kx in 0..geom.kernel_w {
                            let ix = ix0 + kx as isize;
                            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                dst[row + col] = src[base + iy as usize * w + ix as usize];
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Folds an `im2col` patch-gradient matrix back onto the NCHW input gradient
/// (the adjoint of [`im2col`]); overlapping patches accumulate.
///
/// # Errors
///
/// Returns a shape error when `cols` is not
/// `[batch * out_h * out_w, patch_len]`.
pub fn col2im(cols: &Tensor, batch: usize, geom: &ConvGeometry) -> Result<Tensor> {
    let patch = geom.patch_len();
    let rows = batch * geom.positions();
    if cols.shape().dims() != [rows, patch] {
        return Err(TensorError::ShapeMismatch {
            expected: Shape::of(&[rows, patch]),
            actual: cols.shape().clone(),
        });
    }
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    let mut out = Tensor::zeros(Shape::of(&[batch, c, h, w]));
    let src = cols.data();
    let dst = out.data_mut();
    let pad = geom.padding as isize;
    for b in 0..batch {
        for oy in 0..geom.out_h {
            for ox in 0..geom.out_w {
                let row = (b * geom.positions() + oy * geom.out_w + ox) * patch;
                let iy0 = (oy * geom.stride) as isize - pad;
                let ix0 = (ox * geom.stride) as isize - pad;
                let mut col = 0;
                for ch in 0..c {
                    let base = (b * c + ch) * h * w;
                    for ky in 0..geom.kernel_h {
                        let iy = iy0 + ky as isize;
                        for kx in 0..geom.kernel_w {
                            let ix = ix0 + kx as isize;
                            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                dst[base + iy as usize * w + ix as usize] += src[row + col];
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_same_padding() {
        let g = ConvGeometry::new(3, 32, 32, 3, 3, 1, 1).unwrap();
        assert_eq!((g.out_h, g.out_w), (32, 32));
        assert_eq!(g.patch_len(), 27);
        assert_eq!(g.macs(16), 32 * 32 * 27 * 16);
    }

    #[test]
    fn geometry_valid_padding_and_stride() {
        let g = ConvGeometry::new(1, 28, 28, 5, 5, 1, 0).unwrap();
        assert_eq!((g.out_h, g.out_w), (24, 24));
        let g2 = ConvGeometry::new(1, 28, 28, 2, 2, 2, 0).unwrap();
        assert_eq!((g2.out_h, g2.out_w), (14, 14));
    }

    #[test]
    fn geometry_rejects_bad_params() {
        assert!(ConvGeometry::new(1, 4, 4, 3, 3, 0, 0).is_err());
        assert!(ConvGeometry::new(1, 2, 2, 3, 3, 1, 0).is_err());
        assert!(ConvGeometry::new(1, 4, 4, 0, 3, 1, 0).is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no padding: im2col is a pure reshape/permute.
        let input = Tensor::from_vec(
            Shape::of(&[1, 2, 2, 2]),
            vec![1., 2., 3., 4., 5., 6., 7., 8.],
        )
        .unwrap();
        let g = ConvGeometry::new(2, 2, 2, 1, 1, 1, 0).unwrap();
        let cols = im2col(&input, &g).unwrap();
        assert_eq!(cols.shape().dims(), &[4, 2]);
        // position (0,0) gathers channel values 1 and 5
        assert_eq!(cols.row(0).unwrap().data(), &[1.0, 5.0]);
        assert_eq!(cols.row(3).unwrap().data(), &[4.0, 8.0]);
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let input = Tensor::ones(Shape::of(&[1, 1, 2, 2]));
        let g = ConvGeometry::new(1, 2, 2, 3, 3, 1, 1).unwrap();
        let cols = im2col(&input, &g).unwrap();
        // top-left output position: only bottom-right 2x2 of the kernel hits data
        let r0 = cols.row(0).unwrap();
        assert_eq!(r0.data(), &[0., 0., 0., 0., 1., 1., 0., 1., 1.]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let g = ConvGeometry::new(2, 5, 4, 3, 3, 2, 1).unwrap();
        let x = Tensor::from_vec(
            Shape::of(&[2, 2, 5, 4]),
            (0..80).map(|i| (i as f32 * 0.37).sin()).collect(),
        )
        .unwrap();
        let cols_shape = Shape::of(&[2 * g.positions(), g.patch_len()]);
        let y = Tensor::from_vec(
            cols_shape.clone(),
            (0..cols_shape.len())
                .map(|i| (i as f32 * 0.11).cos())
                .collect(),
        )
        .unwrap();
        let ix = im2col(&x, &g).unwrap();
        let cy = col2im(&y, 2, &g).unwrap();
        let lhs = ix.dot(&y).unwrap();
        let rhs = x.dot(&cy).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn im2col_validates_shape() {
        let g = ConvGeometry::new(1, 4, 4, 3, 3, 1, 0).unwrap();
        let wrong = Tensor::zeros(Shape::of(&[1, 2, 4, 4]));
        assert!(im2col(&wrong, &g).is_err());
        let wrong_rank = Tensor::zeros(Shape::of(&[4, 4]));
        assert!(im2col(&wrong_rank, &g).is_err());
    }
}
