//! Cache-blocked, register-tiled f32 GEMM microkernel.
//!
//! The naive kernels in [`matmul`](crate::matmul) accumulate each output
//! element through a single dependent add chain, so they run at the FP-add
//! *latency* (one multiply-add every ~4 cycles) instead of the FP
//! *throughput* of the machine. This module is the packed-path replacement:
//! a BLIS-style blocked GEMM whose inner loop keeps an `MR×NR` tile of
//! independent accumulators live in registers — `MR·NR/NR_vec` separate add
//! chains that the CPU can overlap — while A and B stream from contiguous,
//! tile-major packed panels.
//!
//! ## Structure
//!
//! * [`PackedB`] — the right-hand operand packed once into `NR`-wide
//!   micro-panels (`data[(jt·k + kk)·NR + j]`). Execution plans pack their
//!   weight panels at compile time, so steady-state inference never repacks
//!   B.
//! * `pack_a_block` — the left-hand operand packed per `(Mc, Kc)` block
//!   into `MR`-interleaved micro-panels inside a reusable scratch `Vec`.
//! * [`gemm_packed`] — the driver: `Kc` (depth) and `Mc` (row) cache
//!   blocking around an `MR×NR` register-tile microkernel, with an optional
//!   fused [`Epilogue`] (bias add, bias+activation) applied to each tile
//!   while it is still hot.
//!
//! ## Bit-identity
//!
//! Results are bit-identical (`f32 ==`, with `-0.0 == 0.0`) to the
//! reference `nt_kernel` dot-product loop, because for every output element
//! the accumulation is *sequential in `k` starting from `+0.0`* with one
//! `acc += a·b` rounding step per term — exactly the reference order:
//!
//! * `m`/`n` tiling and the register tile only regroup *independent*
//!   elements; no element's own sum is ever split or reordered.
//! * `Kc` blocking spills the partial sum to `out` between depth blocks; an
//!   `f32` store/load round-trip is exact, and the next block resumes the
//!   same chain (the first block *writes* its tile, so `out` needs no
//!   zero-fill).
//! * Ragged edges are zero-*padded* in `m`/`n` only: padded lanes compute
//!   garbage that is never stored. `k` is never padded or reordered.
//! * There is **no zero-skip branch** anywhere in this module: packed
//!   panels are dense by construction, so the branch could only cost; the
//!   `if aik == 0.0` skip survives solely in the masked-reference kernels
//!   (`nn`/`tn` in [`matmul`](crate::matmul)), where masked full-width
//!   operands really are mostly zero.
//!
//! Fused epilogues reproduce the downstream ops verbatim: bias is one add
//! after the finished dot product (as in the masked layers), ReLU is
//! `v.max(0.0)` and tanh is `f32::tanh` — the exact expressions
//! `stepping-nn`'s activation layers apply elementwise. Sigmoid is *not*
//! offered as an epilogue: `sigmoid(0) = 0.5`, so applying it panel-wise
//! would diverge from the masked reference on inactive (zero) entries once
//! scattered back to full width.
//!
//! ## Tuning knobs
//!
//! [`MR`]`×`[`NR`] `= 4×8` keeps 8 four-wide SSE accumulator vectors plus
//! operands inside the 16 XMM registers of baseline x86-64; [`KC`]` = 256`
//! keeps one A micro-panel (`KC·MR` floats ≈ 4 KiB) L1-resident and one B
//! micro-panel (`KC·NR` ≈ 8 KiB) L1/L2-resident; [`MC`]` = 128` bounds the
//! packed A block (`MC·KC` ≈ 128 KiB) to L2. See `docs/PERFORMANCE.md` for
//! the measured effect.

use crate::matmul::GemmSpec;
use crate::{Result, Shape, Tensor, TensorError};

/// Register-tile rows: independent accumulator rows per microkernel call.
pub const MR: usize = 4;
/// Register-tile columns: accumulator lanes per row (two 4-wide vectors).
pub const NR: usize = 8;
/// Depth (`k`) cache-block: A micro-panels stay L1-resident.
pub const KC: usize = 256;
/// Row (`m`) cache-block: one packed A block stays L2-resident.
pub const MC: usize = 128;

/// Fused per-element epilogue applied to each output tile while it is still
/// in registers, after the final depth block.
///
/// Every variant reproduces the downstream operator bit-for-bit (see the
/// module docs); `None` stores the raw accumulators.
#[derive(Debug, Clone, Copy, Default)]
pub enum Epilogue<'a> {
    /// Store the accumulators unchanged.
    #[default]
    None,
    /// `out[i][j] = acc[i][j] + bias[j]` (`bias.len() == n`).
    Bias(&'a [f32]),
    /// `out[i][j] = (acc[i][j] + bias[j]).max(0.0)` — fused ReLU.
    BiasRelu(&'a [f32]),
    /// `out[i][j] = (acc[i][j] + bias[j]).tanh()` — fused tanh.
    BiasTanh(&'a [f32]),
}

impl Epilogue<'_> {
    /// Applies the epilogue to one finished element.
    #[inline(always)]
    fn apply(&self, v: f32, j: usize) -> f32 {
        match self {
            Epilogue::None => v,
            Epilogue::Bias(bias) => v + bias[j],
            Epilogue::BiasRelu(bias) => (v + bias[j]).max(0.0),
            Epilogue::BiasTanh(bias) => (v + bias[j]).tanh(),
        }
    }

    fn check(&self, n: usize) {
        let len = match self {
            Epilogue::None => return,
            Epilogue::Bias(b) | Epilogue::BiasRelu(b) | Epilogue::BiasTanh(b) => b.len(),
        };
        assert!(len >= n, "epilogue bias shorter than output width");
    }
}

/// The right-hand GEMM operand packed into `NR`-wide, `k`-major
/// micro-panels: `data[(jt·k + kk)·NR + j]` holds `B[jt·NR + j, kk]` (of
/// the *logical* `[n, k]` operand `Bᵀ` reads against), zero-padded in the
/// lane dimension.
///
/// Packing is done once — by the layer-plan compiler for weights, or by
/// [`PackedB::pack_nt`]/[`PackedB::pack_nn`] for ad-hoc operands — and
/// reused by every subsequent [`gemm_packed`] call.
#[derive(Debug, Clone, Default)]
pub struct PackedB {
    data: Vec<f32>,
    n: usize,
    k: usize,
}

impl PackedB {
    /// Packs a row-major `[n, k]` operand (the NT/`matmul_bt` weight
    /// layout: one row per output, contiguous over `k`).
    ///
    /// # Panics
    ///
    /// Panics if `b` is shorter than `n * k`.
    pub fn pack_nt(b: &[f32], n: usize, k: usize) -> PackedB {
        assert!(b.len() >= n * k, "pack_nt operand too short");
        let ntiles = n.div_ceil(NR);
        let mut data = vec![0.0f32; ntiles * k * NR];
        for jt in 0..ntiles {
            let nr_act = NR.min(n - jt * NR);
            let panel = &mut data[jt * k * NR..(jt + 1) * k * NR];
            for j in 0..nr_act {
                let src = &b[(jt * NR + j) * k..(jt * NR + j + 1) * k];
                for (kk, &v) in src.iter().enumerate() {
                    panel[kk * NR + j] = v;
                }
            }
        }
        PackedB { data, n, k }
    }

    /// Packs a row-major `[k, n]` operand (the NN layout: `k` rows of
    /// width `n`, copied as contiguous `NR`-lane runs).
    ///
    /// # Panics
    ///
    /// Panics if `b` is shorter than `k * n`.
    pub fn pack_nn(b: &[f32], k: usize, n: usize) -> PackedB {
        assert!(b.len() >= k * n, "pack_nn operand too short");
        let ntiles = n.div_ceil(NR);
        let mut data = vec![0.0f32; ntiles * k * NR];
        for jt in 0..ntiles {
            let nr_act = NR.min(n - jt * NR);
            let panel = &mut data[jt * k * NR..(jt + 1) * k * NR];
            for kk in 0..k {
                let src = &b[kk * n + jt * NR..kk * n + jt * NR + nr_act];
                panel[kk * NR..kk * NR + nr_act].copy_from_slice(src);
            }
        }
        PackedB { data, n, k }
    }

    /// Logical output width `n` (columns of the product).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Logical depth `k` (inner dimension).
    pub fn k(&self) -> usize {
        self.k
    }
}

/// The innermost loop: accumulates one `MR×NR` register tile over `kc`
/// depth steps. `apanel` is `kc` groups of `MR` interleaved A values,
/// `bpanel` is `kc` groups of `NR` interleaved B values; per element the
/// depth order is strictly ascending, matching the reference dot product.
#[inline(always)]
fn microtile(apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    // Work on a by-value copy so the accumulators are locals LLVM can hold
    // in vector registers across the depth loop, instead of memory the
    // caller's `&mut` points at.
    let mut local = *acc;
    for (av, bv) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        let av: &[f32; MR] = av.try_into().expect("MR chunk");
        let bv: &[f32; NR] = bv.try_into().expect("NR chunk");
        for j in 0..NR {
            let b = bv[j];
            local[0][j] += av[0] * b;
            local[1][j] += av[1] * b;
            local[2][j] += av[2] * b;
            local[3][j] += av[3] * b;
        }
    }
    *acc = local;
}

/// Grows `buf` to `len` elements without re-zeroing retained capacity.
///
/// The packed kernels fully overwrite what they read back, so a reused
/// scratch buffer only pays initialisation for freshly grown capacity —
/// this is the steady-state "no redundant zero-fill" path shared with
/// [`pack`](crate::pack).
pub fn grow(buf: &mut Vec<f32>, len: usize) {
    if buf.len() >= len {
        buf.truncate(len);
    } else {
        buf.resize(len, 0.0);
    }
}

/// Packs the `rows × depth` block of A into `MR`-interleaved micro-panels
/// (`apack[(it·kc + kk)·MR + i]`), zero-padding ragged row tiles.
/// `trans_a` reads A as `[k_total, m]` (TN/TT layouts).
fn pack_a_block(
    a: &[f32],
    trans_a: bool,
    (m, k): (usize, usize),
    rows: std::ops::Range<usize>,
    depth: std::ops::Range<usize>,
    apack: &mut Vec<f32>,
) {
    let (ic, mc) = (rows.start, rows.len());
    let (pc, kc) = (depth.start, depth.len());
    let mtiles = mc.div_ceil(MR);
    grow(apack, mtiles * kc * MR);
    for it in 0..mtiles {
        let dst = &mut apack[it * kc * MR..(it + 1) * kc * MR];
        let mr_act = MR.min(mc - it * MR);
        let row0 = ic + it * MR;
        if trans_a {
            for (kk, d) in dst.chunks_exact_mut(MR).enumerate() {
                let arow = &a[(pc + kk) * m..(pc + kk) * m + m];
                for (i, v) in d.iter_mut().enumerate() {
                    *v = if i < mr_act { arow[row0 + i] } else { 0.0 };
                }
            }
        } else {
            for i in 0..MR {
                if i < mr_act {
                    let arow = &a[(row0 + i) * k + pc..(row0 + i) * k + pc + kc];
                    for (kk, &v) in arow.iter().enumerate() {
                        dst[kk * MR + i] = v;
                    }
                } else {
                    for kk in 0..kc {
                        dst[kk * MR + i] = 0.0;
                    }
                }
            }
        }
    }
}

/// Blocked, register-tiled `C = op(A) · Bᵀ_packed` into a caller-sized
/// slice (`out.len() == m * b.n()`).
///
/// `a` is row-major `[m, k]` (or `[k, m]` with `trans_a`); `b` carries the
/// packed right-hand operand and the `k`/`n` extents; `apack` is reusable
/// A-packing scratch (zero steady-state allocation once grown); `epi` is
/// fused into the final store of each tile.
///
/// Every output element is written (first depth block stores, later blocks
/// read-modify-write), so `out` does not need to be zeroed beforehand.
/// Results are bit-identical to the reference `nt_kernel` loop — see the
/// module docs for the argument.
///
/// # Panics
///
/// Panics if `a`, `out`, or an epilogue bias is shorter than its implied
/// extent.
pub fn gemm_packed(
    a: &[f32],
    trans_a: bool,
    b: &PackedB,
    out: &mut [f32],
    m: usize,
    apack: &mut Vec<f32>,
    epi: Epilogue,
) {
    let (k, n) = (b.k, b.n);
    assert_eq!(out.len(), m * n, "blocked GEMM output extent mismatch");
    assert!(a.len() >= m * k, "blocked GEMM A operand too short");
    epi.check(n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // No depth blocks would run; the reference writes a 0.0 accumulator
        // (plus epilogue) to every element.
        for (idx, o) in out.iter_mut().enumerate() {
            *o = epi.apply(0.0, idx % n);
        }
        return;
    }
    let ntiles = n.div_ceil(NR);
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        let first = pc == 0;
        let last = pc + kc == k;
        for ic in (0..m).step_by(MC) {
            let mc = MC.min(m - ic);
            pack_a_block(a, trans_a, (m, k), ic..ic + mc, pc..pc + kc, apack);
            let mtiles = mc.div_ceil(MR);
            for jt in 0..ntiles {
                let bpanel = &b.data[(jt * k + pc) * NR..(jt * k + pc + kc) * NR];
                let col0 = jt * NR;
                let nr_act = NR.min(n - col0);
                for it in 0..mtiles {
                    let apanel = &apack[it * kc * MR..(it + 1) * kc * MR];
                    let mr_act = MR.min(mc - it * MR);
                    let row0 = ic + it * MR;
                    let mut acc = [[0.0f32; NR]; MR];
                    if !first {
                        // Resume each element's chain from its spilled
                        // partial sum (exact f32 round-trip).
                        for (i, row) in acc.iter_mut().enumerate().take(mr_act) {
                            let orow = &out[(row0 + i) * n + col0..(row0 + i) * n + col0 + nr_act];
                            row[..nr_act].copy_from_slice(orow);
                        }
                    }
                    microtile(apanel, bpanel, &mut acc);
                    for (i, row) in acc.iter().enumerate().take(mr_act) {
                        let orow = &mut out[(row0 + i) * n + col0..(row0 + i) * n + col0 + nr_act];
                        if last {
                            for (j, o) in orow.iter_mut().enumerate() {
                                *o = epi.apply(row[j], col0 + j);
                            }
                        } else {
                            orow.copy_from_slice(&row[..nr_act]);
                        }
                    }
                }
            }
        }
    }
}

/// Whole-matrix blocked GEMM mirroring [`gemm`](crate::matmul::gemm): packs
/// B per `spec` and runs [`gemm_packed`]. Results are bit-identical
/// (`f32 ==`) to the reference kernels for every `GemmSpec` variant — the
/// property tests assert this; the packed inference paths use the
/// plan-compiled [`PackedB`] directly instead.
///
/// # Errors
///
/// Returns the same rank/inner-dimension errors as
/// [`gemm`](crate::matmul::gemm).
pub fn gemm_blocked(a: &Tensor, b: &Tensor, spec: GemmSpec) -> Result<Tensor> {
    let check2 = |t: &Tensor| -> Result<(usize, usize)> {
        if t.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: t.shape().rank(),
            });
        }
        Ok((t.shape().dims()[0], t.shape().dims()[1]))
    };
    let (a0, a1) = check2(a)?;
    let (b0, b1) = check2(b)?;
    let (m, ka) = if spec.trans_a { (a1, a0) } else { (a0, a1) };
    let (kb, n) = if spec.trans_b { (b1, b0) } else { (b0, b1) };
    if ka != kb {
        return Err(TensorError::InnerDimMismatch {
            left: ka,
            right: kb,
        });
    }
    let packed = if spec.trans_b {
        PackedB::pack_nt(b.data(), n, ka)
    } else {
        PackedB::pack_nn(b.data(), ka, n)
    };
    let mut out = Tensor::zeros(Shape::of(&[m, n]));
    let mut apack = Vec::new();
    gemm_packed(
        a.data(),
        spec.trans_a,
        &packed,
        out.data_mut(),
        m,
        &mut apack,
        Epilogue::None,
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use crate::matmul::{gemm, matmul_bt};

    fn seq(shape: &[usize], seed: u64) -> Tensor {
        init::uniform(Shape::of(shape), -1.0, 1.0, &mut init::rng(seed))
    }

    #[test]
    fn blocked_nt_matches_reference_ragged() {
        // deliberately not multiples of MR/NR/KC
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (17, 300, 33),
            (MR, KC, NR),
            (MR + 1, KC + 1, NR + 1),
        ] {
            let a = seq(&[m, k], 1);
            let b = seq(&[n, k], 2);
            let reference = matmul_bt(&a, &b).unwrap();
            let blocked = gemm_blocked(&a, &b, GemmSpec::NT).unwrap();
            assert_eq!(reference, blocked, "NT {m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_all_specs_match_reference() {
        let (m, k, n) = (9, 70, 13);
        for spec in [GemmSpec::NN, GemmSpec::NT, GemmSpec::TN, GemmSpec::TT] {
            let a_dims = if spec.trans_a { [k, m] } else { [m, k] };
            let b_dims = if spec.trans_b { [n, k] } else { [k, n] };
            let a = seq(&a_dims, 3);
            let b = seq(&b_dims, 4);
            let reference = gemm(&a, &b, spec).unwrap();
            let blocked = gemm_blocked(&a, &b, spec).unwrap();
            assert_eq!(reference, blocked, "{spec:?}");
        }
    }

    #[test]
    fn degenerate_extents() {
        for &(m, k, n) in &[(0usize, 4usize, 3usize), (4, 0, 3), (4, 3, 0), (0, 0, 0)] {
            let a = seq(&[m, k], 5);
            let b = seq(&[n, k], 6);
            let reference = matmul_bt(&a, &b).unwrap();
            let blocked = gemm_blocked(&a, &b, GemmSpec::NT).unwrap();
            assert_eq!(reference, blocked, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn epilogue_bias_and_relu() {
        let (m, k, n) = (5, 33, 11);
        let a = seq(&[m, k], 7);
        let b = seq(&[n, k], 8);
        let bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.25 - 1.0).collect();
        let packed = PackedB::pack_nt(b.data(), n, k);
        let mut apack = Vec::new();

        let mut with_bias = vec![f32::NAN; m * n];
        gemm_packed(
            a.data(),
            false,
            &packed,
            &mut with_bias,
            m,
            &mut apack,
            Epilogue::Bias(&bias),
        );
        let mut relu = vec![f32::NAN; m * n];
        gemm_packed(
            a.data(),
            false,
            &packed,
            &mut relu,
            m,
            &mut apack,
            Epilogue::BiasRelu(&bias),
        );
        let reference = matmul_bt(&a, &b).unwrap();
        for i in 0..m {
            for j in 0..n {
                let z = reference.data()[i * n + j] + bias[j];
                assert_eq!(with_bias[i * n + j], z);
                assert_eq!(relu[i * n + j], z.max(0.0));
            }
        }
    }

    #[test]
    fn kc_spill_resumes_exactly() {
        // k > KC forces at least one partial-sum spill/reload per element.
        let (m, k, n) = (3, 2 * KC + 17, 5);
        let a = seq(&[m, k], 9);
        let b = seq(&[n, k], 10);
        assert_eq!(
            matmul_bt(&a, &b).unwrap(),
            gemm_blocked(&a, &b, GemmSpec::NT).unwrap()
        );
    }

    #[test]
    fn output_never_needs_prezeroing() {
        let (m, k, n) = (6, 40, 9);
        let a = seq(&[m, k], 11);
        let b = seq(&[n, k], 12);
        let packed = PackedB::pack_nt(b.data(), n, k);
        let mut apack = Vec::new();
        let mut out = vec![f32::NAN; m * n];
        gemm_packed(
            a.data(),
            false,
            &packed,
            &mut out,
            m,
            &mut apack,
            Epilogue::None,
        );
        assert_eq!(out.as_slice(), matmul_bt(&a, &b).unwrap().data());
    }

    #[test]
    fn grow_keeps_contents() {
        let mut v = vec![1.0f32, 2.0];
        grow(&mut v, 4);
        assert_eq!(v, [1.0, 2.0, 0.0, 0.0]);
        grow(&mut v, 1);
        assert_eq!(v, [1.0]);
    }
}

#[cfg(test)]
mod timing {
    use super::*;
    use crate::init;
    use crate::matmul::matmul_bt;
    use crate::Shape;

    #[test]
    #[ignore]
    fn probe() {
        let (m, k, n) = (16usize, 512usize, 512usize);
        let a = init::uniform(Shape::of(&[m, k]), -1.0, 1.0, &mut init::rng(1));
        let b = init::uniform(Shape::of(&[n, k]), -1.0, 1.0, &mut init::rng(2));
        let packed = PackedB::pack_nt(b.data(), n, k);
        let mut apack = Vec::new();
        let mut out = vec![0.0f32; m * n];
        let reps = 200;
        // warm
        for _ in 0..5 {
            gemm_packed(
                a.data(),
                false,
                &packed,
                &mut out,
                m,
                &mut apack,
                Epilogue::None,
            );
            let _ = matmul_bt(&a, &b).unwrap();
        }
        let t = std::time::Instant::now();
        for _ in 0..reps {
            gemm_packed(
                a.data(),
                false,
                &packed,
                &mut out,
                m,
                &mut apack,
                Epilogue::None,
            );
        }
        let blocked_us = t.elapsed().as_secs_f64() * 1e6 / reps as f64;
        let t = std::time::Instant::now();
        for _ in 0..reps {
            let _ = matmul_bt(&a, &b).unwrap();
        }
        let naive_us = t.elapsed().as_secs_f64() * 1e6 / reps as f64;
        // include on-the-fly B packing cost for reference
        let t = std::time::Instant::now();
        for _ in 0..reps {
            let p = PackedB::pack_nt(b.data(), n, k);
            gemm_packed(a.data(), false, &p, &mut out, m, &mut apack, Epilogue::None);
        }
        let pack_us = t.elapsed().as_secs_f64() * 1e6 / reps as f64;
        println!(
            "naive {naive_us:.1}us blocked {blocked_us:.1}us (x{:.2}) blocked+pack {pack_us:.1}us",
            naive_us / blocked_us
        );
    }
}
