//! # stepping-tensor
//!
//! Dense `f32` tensor substrate for the [SteppingNet (DATE 2023)] reproduction.
//!
//! The paper's reference implementation used PyTorch; this crate provides the
//! minimal-but-complete tensor toolkit the rest of the workspace needs:
//!
//! * [`Shape`] — n-dimensional extents with row-major strides,
//! * [`Tensor`] — owned, contiguous, row-major `f32` storage,
//! * [`matmul`] — matrix multiplication with transpose variants (the
//!   masked-reference kernels),
//! * [`microkernel`] — the blocked, register-tiled GEMM behind the packed
//!   inference paths (bit-identical to the reference kernels),
//! * [`conv`] — `im2col`/`col2im` based 2-D convolution kernels,
//! * [`reduce`] — reductions (sum/mean/max/argmax/softmax, per-axis),
//! * [`init`] — deterministic random initialisers (uniform, normal,
//!   Kaiming/Xavier fan-scaled),
//!
//! Everything is CPU-only and deterministic given a seed, which is what the
//! test suite and the benchmark harness rely on.
//!
//! ## Example
//!
//! ```
//! use stepping_tensor::{Tensor, Shape};
//!
//! let a = Tensor::from_vec(Shape::of(&[2, 3]), vec![1., 2., 3., 4., 5., 6.])?;
//! let b = Tensor::ones(Shape::of(&[3, 2]));
//! let c = stepping_tensor::matmul::matmul(&a, &b)?;
//! assert_eq!(c.shape().dims(), &[2, 2]);
//! assert_eq!(c.data()[0], 6.0);
//! # Ok::<(), stepping_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod conv;
mod error;
mod grads;
pub mod init;
pub mod matmul;
pub mod microkernel;
pub mod pack;
pub mod reduce;
mod shape;
mod tensor;

pub use error::TensorError;
pub use grads::GradStore;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience result alias used across this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
