use std::fmt;

use crate::Shape;

/// Error type for tensor operations.
///
/// Every fallible public function in this crate returns
/// [`Result<T, TensorError>`](crate::Result).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Shape that was expected by the operation.
        expected: Shape,
        /// Shape that was actually provided.
        actual: Shape,
    },
    /// The provided data length does not match the element count of the shape.
    LengthMismatch {
        /// Element count implied by the shape.
        expected: usize,
        /// Length of the provided buffer.
        actual: usize,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// Inner dimensions of a matrix product disagree.
    InnerDimMismatch {
        /// Columns of the left operand.
        left: usize,
        /// Rows of the right operand.
        right: usize,
    },
    /// A convolution/pooling geometry is invalid (e.g. kernel larger than
    /// padded input, or zero stride).
    InvalidGeometry(String),
    /// Generic invalid-argument error with a human-readable description.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "length mismatch: shape implies {expected} elements, buffer has {actual}"
                )
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected {expected}, got {actual}")
            }
            TensorError::InnerDimMismatch { left, right } => {
                write!(f, "matmul inner dimensions disagree: {left} vs {right}")
            }
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<TensorError> = vec![
            TensorError::ShapeMismatch {
                expected: Shape::of(&[2, 2]),
                actual: Shape::of(&[3]),
            },
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::AxisOutOfRange { axis: 5, rank: 2 },
            TensorError::RankMismatch {
                expected: 4,
                actual: 2,
            },
            TensorError::InnerDimMismatch { left: 3, right: 4 },
            TensorError::InvalidGeometry("kernel 5 exceeds input 3".into()),
            TensorError::InvalidArgument("p must be in (0, 1]".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
