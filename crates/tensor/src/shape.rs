use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Result, TensorError};

/// The extents of an n-dimensional tensor, in row-major order.
///
/// `Shape` is a thin, copy-on-clone wrapper over a `Vec<usize>` that provides
/// stride computation and index arithmetic. A rank-0 shape (`Shape::scalar()`)
/// describes a single element.
///
/// # Example
///
/// ```
/// use stepping_tensor::Shape;
///
/// let s = Shape::of(&[2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of extents.
    pub fn of(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Creates the rank-0 scalar shape (one element).
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements (any extent is zero).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extent of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flattens a multi-dimensional index into a row-major linear offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the index rank differs from
    /// the shape's rank, or [`TensorError::InvalidArgument`] if any coordinate
    /// is out of bounds.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                expected: self.rank(),
                actual: index.len(),
            });
        }
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            if i >= d {
                return Err(TensorError::InvalidArgument(format!(
                    "index {i} out of bounds for axis {axis} with extent {d}"
                )));
            }
            off += i * strides[axis];
        }
        Ok(off)
    }

    /// Checks element-count compatibility for a reshape to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn check_same_len(&self, other: &Shape) -> Result<()> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                expected: self.clone(),
                actual: other.clone(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::of(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::of(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::of(&[5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_round_trips() {
        let s = Shape::of(&[2, 3, 4]);
        let mut seen = vec![false; s.len()];
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]).unwrap();
                    assert!(!seen[off], "offset {off} visited twice");
                    seen[off] = true;
                }
            }
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn offset_rejects_bad_rank_and_bounds() {
        let s = Shape::of(&[2, 3]);
        assert!(matches!(
            s.offset(&[1]),
            Err(TensorError::RankMismatch { .. })
        ));
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(TensorError::InvalidArgument(_))
        ));
    }

    #[test]
    fn zero_extent_shape_is_empty() {
        let s = Shape::of(&[3, 0, 2]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn display_formats_like_a_list() {
        assert_eq!(Shape::of(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn dim_checks_axis() {
        let s = Shape::of(&[4, 5]);
        assert_eq!(s.dim(1).unwrap(), 5);
        assert!(matches!(
            s.dim(2),
            Err(TensorError::AxisOutOfRange { axis: 2, rank: 2 })
        ));
    }
}
