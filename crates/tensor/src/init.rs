//! Deterministic random tensor initialisers.
//!
//! All training runs in the workspace are seeded, so every experiment in
//! `EXPERIMENTS.md` reproduces bit-for-bit. Normal samples use Box–Muller on
//! top of [`rand`]'s uniform stream (the `rand_distr` crate is deliberately
//! not a dependency).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Shape, Tensor};

/// Creates a seeded RNG; the single entry point for randomness in the
/// workspace.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Tensor with i.i.d. uniform samples in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform(shape: Shape, lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
    assert!(lo < hi, "uniform bounds must satisfy lo < hi");
    let len = shape.len();
    let data = (0..len)
        .map(|_| rng.random::<f32>() * (hi - lo) + lo)
        .collect();
    Tensor::from_vec(shape, data).expect("length matches by construction")
}

/// Tensor with i.i.d. normal samples `N(mean, std²)` via Box–Muller.
pub fn normal(shape: Shape, mean: f32, std: f32, rng: &mut StdRng) -> Tensor {
    let len = shape.len();
    let mut data = Vec::with_capacity(len);
    while data.len() < len {
        // Box–Muller transform: two uniforms → two independent normals.
        let u1: f32 = rng.random::<f32>().max(f32::MIN_POSITIVE);
        let u2: f32 = rng.random();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < len {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(shape, data).expect("length matches by construction")
}

/// Kaiming/He initialisation for ReLU networks: `N(0, sqrt(2 / fan_in)²)`.
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn kaiming(shape: Shape, fan_in: usize, rng: &mut StdRng) -> Tensor {
    assert!(fan_in > 0, "fan_in must be nonzero");
    normal(shape, 0.0, (2.0 / fan_in as f32).sqrt(), rng)
}

/// Xavier/Glorot uniform initialisation:
/// `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
///
/// # Panics
///
/// Panics if `fan_in + fan_out` is zero.
pub fn xavier(shape: Shape, fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan_in + fan_out must be nonzero");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, -bound, bound, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let a = uniform(Shape::of(&[100]), -1.0, 1.0, &mut rng(7));
        let b = uniform(Shape::of(&[100]), -1.0, 1.0, &mut rng(7));
        assert_eq!(a, b);
        let c = uniform(Shape::of(&[100]), -1.0, 1.0, &mut rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform(Shape::of(&[1000]), 2.0, 3.0, &mut rng(1));
        assert!(t.data().iter().all(|&x| (2.0..3.0).contains(&x)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let t = normal(Shape::of(&[20_000]), 1.5, 2.0, &mut rng(42));
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!((mean - 1.5).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let small = kaiming(Shape::of(&[10_000]), 10, &mut rng(3));
        let large = kaiming(Shape::of(&[10_000]), 1000, &mut rng(3));
        assert!(small.norm_sq() > large.norm_sq() * 10.0);
    }

    #[test]
    fn xavier_respects_symmetric_bound() {
        let t = xavier(Shape::of(&[1000]), 8, 4, &mut rng(5));
        let bound = (6.0f32 / 12.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= bound));
    }
}
