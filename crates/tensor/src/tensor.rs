use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::{Result, Shape, TensorError};

/// Owned, contiguous, row-major `f32` tensor.
///
/// `Tensor` is the single storage type used throughout the workspace. It is
/// deliberately simple: no views, no broadcasting magic beyond the explicit
/// `*_rowwise` helpers — the layers in `stepping-nn` are written against this
/// concrete contract, which keeps every gradient auditable.
///
/// # Example
///
/// ```
/// use stepping_tensor::{Shape, Tensor};
///
/// let t = Tensor::from_vec(Shape::of(&[2, 2]), vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(t.get(&[1, 0])?, 3.0);
/// let doubled = t.map(|x| x * 2.0);
/// assert_eq!(doubled.data(), &[2.0, 4.0, 6.0, 8.0]);
/// # Ok::<(), stepping_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: Shape) -> Self {
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(shape: Shape) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// `shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates indexing errors from [`Shape::offset`].
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates indexing errors from [`Shape::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a copy reshaped to `shape` (same element count).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if element counts differ.
    pub fn reshape(&self, shape: Shape) -> Result<Tensor> {
        self.shape.check_same_len(&shape)?;
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Reshapes in place (same element count).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if element counts differ.
    pub fn reshape_in_place(&mut self, shape: Shape) -> Result<()> {
        self.shape.check_same_len(&shape)?;
        self.shape = shape;
        Ok(())
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise map in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        self.check_same_shape(other)?;
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// In-place element-wise combination: `self[i] = f(self[i], other[i])`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip_in_place(&mut self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<()> {
        self.check_same_shape(other)?;
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = f(*a, b);
        }
        Ok(())
    }

    /// `self += alpha * other` (AXPY), the hot loop of every optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.check_same_shape(other)?;
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scales every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn mean(&self) -> f32 {
        assert!(!self.is_empty(), "mean of empty tensor");
        self.sum() / self.len() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn max(&self) -> f32 {
        assert!(!self.is_empty(), "max of empty tensor");
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn min(&self) -> f32 {
        assert!(!self.is_empty(), "min of empty tensor");
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element in the flattened buffer.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Squared L2 norm of the flattened buffer.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Dot product of the flattened buffers.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        self.check_same_shape(other)?;
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .sum())
    }

    /// Returns `true` if every element is finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn transpose2(&self) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        let (r, c) = (self.shape.dims()[0], self.shape.dims()[1]);
        let mut out = Tensor::zeros(Shape::of(&[c, r]));
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices or
    /// [`TensorError::InvalidArgument`] for an out-of-range row.
    pub fn row(&self, i: usize) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        let (r, c) = (self.shape.dims()[0], self.shape.dims()[1]);
        if i >= r {
            return Err(TensorError::InvalidArgument(format!(
                "row {i} out of range for {r} rows"
            )));
        }
        Ok(Tensor {
            shape: Shape::of(&[c]),
            data: self.data[i * c..(i + 1) * c].to_vec(),
        })
    }

    /// Copies outer-dimension slots `lo..hi` into a new tensor (rows of a
    /// matrix, samples of an `[n, c, h, w]` batch). Used by the parallel
    /// trainer to cut a batch into canonical shards.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for a rank-0 tensor or an
    /// out-of-order / out-of-range slot range.
    pub fn slice_outer(&self, lo: usize, hi: usize) -> Result<Tensor> {
        if self.shape.rank() == 0 {
            return Err(TensorError::InvalidArgument(
                "slice_outer needs at least one dimension".into(),
            ));
        }
        let n = self.shape.dims()[0];
        if lo > hi || hi > n {
            return Err(TensorError::InvalidArgument(format!(
                "slice {lo}..{hi} out of range for outer dimension {n}"
            )));
        }
        let stride = self.data.len().checked_div(n).unwrap_or(0);
        let mut dims = self.shape.dims().to_vec();
        dims[0] = hi - lo;
        Ok(Tensor {
            shape: Shape::of(&dims),
            data: self.data[lo * stride..hi * stride].to_vec(),
        })
    }

    /// Adds a rank-1 `bias` to every row of a rank-2 tensor, in place.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `self` is not `[n, c]` or `bias` not `[c]`.
    pub fn add_rowwise(&mut self, bias: &Tensor) -> Result<()> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        let (n, c) = (self.shape.dims()[0], self.shape.dims()[1]);
        if bias.shape.dims() != [c] {
            return Err(TensorError::ShapeMismatch {
                expected: Shape::of(&[c]),
                actual: bias.shape.clone(),
            });
        }
        for i in 0..n {
            for j in 0..c {
                self.data[i * c + j] += bias.data[j];
            }
        }
        Ok(())
    }

    fn check_same_shape(&self, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: other.shape.clone(),
            });
        }
        Ok(())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(Shape::of(&[0]))
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX_SHOWN: usize = 8;
        write!(f, "Tensor{} [", self.shape)?;
        for (i, v) in self.data.iter().take(MAX_SHOWN).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.len() > MAX_SHOWN {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

macro_rules! impl_elementwise_op {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for &Tensor {
            type Output = Tensor;

            /// # Panics
            ///
            /// Panics if the shapes differ; use [`Tensor::zip`] for a fallible
            /// version.
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.zip(rhs, |a, b| a $op b).expect("elementwise op shape mismatch")
            }
        }
    };
}

impl_elementwise_op!(Add, add, +);
impl_elementwise_op!(Sub, sub, -);
impl_elementwise_op!(Mul, mul, *);
impl_elementwise_op!(Div, div, /);

impl Neg for &Tensor {
    type Output = Tensor;

    fn neg(self) -> Tensor {
        self.map(|x| -x)
    }
}

impl AddAssign<&Tensor> for Tensor {
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn add_assign(&mut self, rhs: &Tensor) {
        self.zip_in_place(rhs, |a, b| a + b)
            .expect("add_assign shape mismatch");
    }
}

impl SubAssign<&Tensor> for Tensor {
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn sub_assign(&mut self, rhs: &Tensor) {
        self.zip_in_place(rhs, |a, b| a - b)
            .expect("sub_assign shape mismatch");
    }
}

impl MulAssign<f32> for Tensor {
    fn mul_assign(&mut self, rhs: f32) {
        self.scale(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2x2() -> Tensor {
        Tensor::from_vec(Shape::of(&[2, 2]), vec![1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    #[test]
    fn constructors_fill_correctly() {
        assert_eq!(Tensor::zeros(Shape::of(&[3])).data(), &[0.0, 0.0, 0.0]);
        assert_eq!(Tensor::ones(Shape::of(&[2])).data(), &[1.0, 1.0]);
        assert_eq!(Tensor::full(Shape::of(&[2]), 7.5).data(), &[7.5, 7.5]);
        assert_eq!(Tensor::scalar(3.0).len(), 1);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(Shape::of(&[3]), vec![1.0]).is_err());
        assert!(Tensor::from_vec(Shape::of(&[2]), vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = t2x2();
        t.set(&[0, 1], 9.0).unwrap();
        assert_eq!(t.get(&[0, 1]).unwrap(), 9.0);
        assert_eq!(t.get(&[1, 1]).unwrap(), 4.0);
    }

    #[test]
    fn arithmetic_ops_elementwise() {
        let a = t2x2();
        let b = Tensor::ones(Shape::of(&[2, 2]));
        assert_eq!((&a + &b).data(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!((&a - &b).data(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!((&a * &a).data(), &[1.0, 4.0, 9.0, 16.0]);
        assert_eq!((&a / &a).data(), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!((-&a).data(), &[-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t2x2();
        let b = Tensor::ones(Shape::of(&[2, 2]));
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[1.5, 2.5, 3.5, 4.5]);
        assert!(a.axpy(1.0, &Tensor::ones(Shape::of(&[3]))).is_err());
    }

    #[test]
    fn reductions() {
        let a = t2x2();
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.argmax(), 3);
        assert_eq!(a.norm_sq(), 30.0);
        assert_eq!(a.dot(&a).unwrap(), 30.0);
    }

    #[test]
    fn transpose2_swaps_axes() {
        let a = Tensor::from_vec(Shape::of(&[2, 3]), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let t = a.transpose2().unwrap();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.data(), &[1., 4., 2., 5., 3., 6.]);
        // double transpose is identity
        assert_eq!(t.transpose2().unwrap(), a);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = t2x2();
        let r = a.reshape(Shape::of(&[4])).unwrap();
        assert_eq!(r.data(), a.data());
        assert!(a.reshape(Shape::of(&[3])).is_err());
    }

    #[test]
    fn add_rowwise_broadcasts_bias() {
        let mut a = Tensor::zeros(Shape::of(&[2, 3]));
        let b = Tensor::from_vec(Shape::of(&[3]), vec![1.0, 2.0, 3.0]).unwrap();
        a.add_rowwise(&b).unwrap();
        assert_eq!(a.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn row_extracts_slice() {
        let a = t2x2();
        assert_eq!(a.row(1).unwrap().data(), &[3.0, 4.0]);
        assert!(a.row(2).is_err());
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut a = t2x2();
        assert!(a.is_finite());
        a.set(&[0, 0], f32::NAN).unwrap();
        assert!(!a.is_finite());
    }

    #[test]
    fn display_truncates() {
        let a = Tensor::zeros(Shape::of(&[20]));
        let s = a.to_string();
        assert!(s.contains('…'));
    }
}
