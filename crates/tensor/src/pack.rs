//! Packed-panel kernels for compiled subnet execution plans.
//!
//! A SteppingNet subnet touches only a subset of each layer's neurons, yet
//! the masked reference path multiplies full-width matrices whose inactive
//! entries are zero. The helpers here let callers *gather* the surviving
//! rows/columns into small contiguous panels, run a dense NT GEMM on them,
//! and *scatter* the result back to full-width buffers.
//!
//! Two GEMM entry points exist: [`gemm_nt_into`]/[`gemm_nt_slice`] run the
//! exact reference dot-product loop behind
//! [`matmul_bt`](crate::matmul::matmul_bt) (kept as the test oracle), while
//! [`gemm_packed_nt_into`]/[`gemm_packed_nt_slice`] run the blocked,
//! register-tiled [`microkernel`](crate::microkernel) against a pre-packed
//! weight panel with an optional fused bias/activation epilogue — the hot
//! inference path.
//!
//! ## Bit-identity contract
//!
//! Both entry points accumulate every output element sequentially in `k`
//! from `+0.0`, one rounding step per term — the identical per-element
//! order as the dense loop (see [`microkernel`](crate::microkernel) for the
//! blocked kernel's argument). As long as the gathered indices are in
//! ascending order, the surviving terms of each dot product are accumulated
//! in the same order as the dense path; the dropped terms are all exact
//! `±0.0` products, which can only affect the *sign* of a zero accumulator,
//! never a nonzero value. Results are therefore equal under `f32`
//! comparison (`-0.0 == 0.0`) to the masked dense path — the property
//! tests in `crates/core/tests` and `tests/` assert this across random
//! assignments.
//!
//! All `*_into` entry points write into caller-owned `Vec<f32>` scratch
//! buffers ([`PackScratch`]) so steady-state inference does zero heap
//! allocation per forward once the buffers have grown to their high-water
//! mark, and no redundant zero-fill either: buffers whose every element is
//! overwritten are grown with [`microkernel::grow`] instead of re-zeroed.

use crate::conv::ConvGeometry;
use crate::matmul::nt_kernel;
use crate::microkernel::{self, Epilogue, PackedB};
use crate::{Result, Shape, Tensor, TensorError};

/// Reusable scratch buffers for packed execution.
///
/// One `PackScratch` per layer (or per executor) amortises the gather /
/// GEMM-output allocations: buffers are grown without re-zeroing retained
/// capacity ([`microkernel::grow`]) and only reallocate when a call needs
/// more capacity than any previous call — steady-state inference does zero
/// heap allocation *and* zero redundant memset per forward.
#[derive(Debug, Clone, Default)]
pub struct PackScratch {
    /// Gathered input panel (`[rows, packed_in]`), also used as the im2col
    /// patch matrix for packed convolutions.
    pub input: Vec<f32>,
    /// Packed GEMM output (`[rows, packed_out]`).
    pub out: Vec<f32>,
    /// A-panel packing scratch for the blocked microkernel.
    pub a_pack: Vec<f32>,
}

impl PackScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Gathers columns `idx` of a row-major `[rows, width]` matrix into `dst`
/// (`[rows, idx.len()]`), reusing `dst`'s capacity.
///
/// # Panics
///
/// Panics if `src` is shorter than `rows * width` or any index is out of
/// bounds.
pub fn gather_columns(src: &[f32], rows: usize, width: usize, idx: &[usize], dst: &mut Vec<f32>) {
    let k = idx.len();
    // every element is overwritten below, so retained capacity is not
    // re-zeroed
    microkernel::grow(dst, rows * k);
    for r in 0..rows {
        let srow = &src[r * width..(r + 1) * width];
        let drow = &mut dst[r * k..(r + 1) * k];
        for (d, &i) in drow.iter_mut().zip(idx.iter()) {
            *d = srow[i];
        }
    }
}

/// Scatters a packed `[rows, idx.len()]` matrix into columns `idx` of a
/// row-major `[rows, width]` destination. Untouched destination entries are
/// left as-is (callers pass a zeroed buffer to preserve exact-zero inactive
/// outputs).
///
/// # Panics
///
/// Panics if the slices are shorter than implied or any index is out of
/// bounds.
pub fn scatter_columns(src: &[f32], rows: usize, idx: &[usize], dst: &mut [f32], width: usize) {
    let k = idx.len();
    for r in 0..rows {
        let srow = &src[r * k..(r + 1) * k];
        let drow = &mut dst[r * width..(r + 1) * width];
        for (&v, &i) in srow.iter().zip(idx.iter()) {
            drow[i] = v;
        }
    }
}

/// `C = A · Bᵀ` on raw packed panels, writing into a reusable buffer.
///
/// `a` is `[m, k]`, `b` is `[n, k]`, and `out` is resized to `[m, n]`. Runs
/// the exact kernel behind [`matmul_bt`](crate::matmul::matmul_bt), so the
/// per-element accumulation order matches the dense path bit for bit.
///
/// This is the *reference* packed entry point (and the oracle the blocked
/// kernel is tested against); the hot inference paths use
/// [`gemm_packed_nt_into`] with a plan-compiled [`PackedB`] instead.
///
/// # Panics
///
/// Panics if `a` or `b` is shorter than its implied extent.
pub fn gemm_nt_into(a: &[f32], b: &[f32], out: &mut Vec<f32>, m: usize, k: usize, n: usize) {
    out.clear();
    out.resize(m * n, 0.0);
    gemm_nt_slice(a, b, out, m, k, n);
}

/// `C = A · Bᵀ` through the blocked, register-tiled microkernel
/// ([`microkernel::gemm_packed`]), writing into a reusable buffer that is
/// grown without re-zeroing (the kernel overwrites every element).
///
/// `a` is `[m, b.k()]`, `b` is the pre-packed weight panel, `a_pack` is the
/// A-packing scratch (typically [`PackScratch::a_pack`]), and `epi` fuses
/// bias/activation into the final tile store. Bit-identical to
/// [`gemm_nt_into`] + a separate bias/activation pass — see
/// [`microkernel`] for the argument.
///
/// # Panics
///
/// Panics if `a` or an epilogue bias is shorter than its implied extent.
pub fn gemm_packed_nt_into(
    a: &[f32],
    b: &PackedB,
    out: &mut Vec<f32>,
    m: usize,
    a_pack: &mut Vec<f32>,
    epi: Epilogue,
) {
    microkernel::grow(out, m * b.n());
    microkernel::gemm_packed(a, false, b, out, m, a_pack, epi);
}

/// [`gemm_packed_nt_into`] writing into a caller-sized slice
/// (`out.len() == m * b.n()`) — used when the result lands directly in a
/// pre-allocated [`Tensor`].
///
/// # Panics
///
/// Panics if any slice is shorter than its implied extent.
pub fn gemm_packed_nt_slice(
    a: &[f32],
    b: &PackedB,
    out: &mut [f32],
    m: usize,
    a_pack: &mut Vec<f32>,
    epi: Epilogue,
) {
    microkernel::gemm_packed(a, false, b, out, m, a_pack, epi);
}

/// [`gemm_nt_into`] writing into a caller-sized slice (`out.len() == m * n`)
/// — used when the result lands directly in a pre-allocated [`Tensor`].
///
/// # Panics
///
/// Panics if any slice is shorter than its implied extent.
pub fn gemm_nt_slice(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert!(a.len() >= m * k, "packed A panel too short");
    assert!(b.len() >= n * k, "packed B panel too short");
    assert_eq!(out.len(), m * n, "packed output extent mismatch");
    nt_kernel(&a[..m * k], &b[..n * k], out, m, k, n);
}

/// Unfolds the listed input channels of an NCHW tensor into an `im2col`
/// patch matrix `[batch * out_h * out_w, channels.len() * kh * kw]`, reusing
/// `dst`'s capacity.
///
/// Patch entries follow the same `[channel][ky][kx]` order as
/// [`im2col`](crate::conv::im2col) restricted to `channels`, with
/// zero-padded positions left at `0.0` — so a GEMM against a weight panel
/// gathered over the same channel list reproduces the dense convolution's
/// surviving terms in order.
///
/// # Errors
///
/// Returns a shape error when the input is not `[n, c, h, w]` matching
/// `geom`, or when a channel index is out of range.
pub fn im2col_channels_into(
    input: &Tensor,
    geom: &ConvGeometry,
    channels: &[usize],
    dst: &mut Vec<f32>,
) -> Result<()> {
    let dims = input.shape().dims();
    if dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: dims.len(),
        });
    }
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    if c != geom.in_channels || h != geom.in_h || w != geom.in_w {
        return Err(TensorError::ShapeMismatch {
            expected: Shape::of(&[n, geom.in_channels, geom.in_h, geom.in_w]),
            actual: input.shape().clone(),
        });
    }
    if let Some(&bad) = channels.iter().find(|&&ch| ch >= c) {
        return Err(TensorError::InvalidGeometry(format!(
            "channel index {bad} out of range for {c} input channels"
        )));
    }
    let window = geom.kernel_h * geom.kernel_w;
    let patch = channels.len() * window;
    let rows = n * geom.positions();
    // the loops below write every entry (padding positions explicitly), so
    // retained capacity is not re-zeroed
    microkernel::grow(dst, rows * patch);
    let src = input.data();
    let pad = geom.padding as isize;
    for b in 0..n {
        for oy in 0..geom.out_h {
            for ox in 0..geom.out_w {
                let row = (b * geom.positions() + oy * geom.out_w + ox) * patch;
                let iy0 = (oy * geom.stride) as isize - pad;
                let ix0 = (ox * geom.stride) as isize - pad;
                let mut col = 0;
                for &ch in channels {
                    let base = (b * c + ch) * h * w;
                    for ky in 0..geom.kernel_h {
                        let iy = iy0 + ky as isize;
                        for kx in 0..geom.kernel_w {
                            let ix = ix0 + kx as isize;
                            dst[row + col] =
                                if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                    src[base + iy as usize * w + ix as usize]
                                } else {
                                    0.0
                                };
                            col += 1;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Scatters a packed position-major matrix `[batch * positions,
/// channels.len()]` into the listed channels of a zero-initialised NCHW
/// buffer `[batch, c_full, out_h, out_w]` (`positions = out_h * out_w`).
///
/// This is the packed analogue of the dense position-major → NCHW
/// transpose: `dst[(b * c_full + ch) * positions + p] = src[(b * positions
/// + p) * channels.len() + ci]`.
///
/// # Panics
///
/// Panics if the slices are shorter than implied or any channel index is
/// `>= c_full`.
pub fn scatter_mat_to_nchw(
    src: &[f32],
    batch: usize,
    positions: usize,
    channels: &[usize],
    c_full: usize,
    dst: &mut [f32],
) {
    let k = channels.len();
    for b in 0..batch {
        for p in 0..positions {
            let srow = &src[(b * positions + p) * k..(b * positions + p + 1) * k];
            for (ci, &ch) in channels.iter().enumerate() {
                dst[(b * c_full + ch) * positions + p] = srow[ci];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::im2col;
    use crate::init;
    use crate::matmul::matmul_bt;

    #[test]
    fn gather_scatter_roundtrip() {
        let src = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut packed = Vec::new();
        gather_columns(&src, 2, 3, &[0, 2], &mut packed);
        assert_eq!(packed, vec![1.0, 3.0, 4.0, 6.0]);
        let mut dst = vec![0.0; 6];
        scatter_columns(&packed, 2, &[0, 2], &mut dst, 3);
        assert_eq!(dst, vec![1.0, 0.0, 3.0, 4.0, 0.0, 6.0]);
    }

    #[test]
    fn gemm_nt_into_matches_matmul_bt() {
        let a = init::uniform(Shape::of(&[3, 5]), -1.0, 1.0, &mut init::rng(7));
        let b = init::uniform(Shape::of(&[4, 5]), -1.0, 1.0, &mut init::rng(8));
        let dense = matmul_bt(&a, &b).unwrap();
        let mut out = Vec::new();
        gemm_nt_into(a.data(), b.data(), &mut out, 3, 5, 4);
        assert_eq!(out.as_slice(), dense.data());
    }

    #[test]
    fn im2col_channels_matches_dense_subset() {
        let g = ConvGeometry::new(3, 5, 4, 3, 3, 1, 1).unwrap();
        let x = init::uniform(Shape::of(&[2, 3, 5, 4]), -1.0, 1.0, &mut init::rng(9));
        let dense = im2col(&x, &g).unwrap();
        let mut packed = Vec::new();
        im2col_channels_into(&x, &g, &[0, 2], &mut packed).unwrap();
        let window = 9;
        let rows = 2 * g.positions();
        for r in 0..rows {
            for (ci, &ch) in [0usize, 2].iter().enumerate() {
                for k in 0..window {
                    assert_eq!(
                        packed[r * 2 * window + ci * window + k],
                        dense.data()[r * g.patch_len() + ch * window + k]
                    );
                }
            }
        }
    }

    #[test]
    fn im2col_channels_validates() {
        let g = ConvGeometry::new(2, 4, 4, 3, 3, 1, 1).unwrap();
        let x = Tensor::zeros(Shape::of(&[1, 2, 4, 4]));
        let mut dst = Vec::new();
        assert!(im2col_channels_into(&x, &g, &[2], &mut dst).is_err());
        let wrong = Tensor::zeros(Shape::of(&[1, 3, 4, 4]));
        assert!(im2col_channels_into(&wrong, &g, &[0], &mut dst).is_err());
    }

    #[test]
    fn scatter_nchw_places_channels() {
        // 1 batch, 2 positions, scatter channels [1] of 3 total.
        let src = [7.0, 8.0];
        let mut dst = vec![0.0; 6];
        scatter_mat_to_nchw(&src, 1, 2, &[1], 3, &mut dst);
        assert_eq!(dst, vec![0.0, 0.0, 7.0, 8.0, 0.0, 0.0]);
    }
}
