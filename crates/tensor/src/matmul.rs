//! Blocked matrix multiplication kernels.
//!
//! These are the hot loops behind every [`Linear`](../../stepping_nn) layer
//! and the `im2col` formulation of convolution. All kernels operate on
//! rank-2 [`Tensor`]s and are cache-blocked over the inner dimension.

use crate::{Result, Shape, Tensor, TensorError};

/// Cache block size (elements) for the k-loop; tuned for L1-resident panels.
const BLOCK: usize = 64;

/// Below this many multiply-adds a product stays single-threaded (thread
/// spawn overhead would dominate).
const PARALLEL_FLOP_THRESHOLD: usize = 4_000_000;

/// Number of worker threads for large products.
fn worker_count(rows: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(rows)
        .min(8)
}

/// Runs `kernel` over disjoint row chunks of `out`, in parallel when the
/// problem is big enough. `kernel(row_offset, out_rows)` must fill the given
/// rows only.
fn par_rows<F>(out: &mut [f32], rows: usize, row_width: usize, flops: usize, kernel: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let workers = if flops >= PARALLEL_FLOP_THRESHOLD {
        worker_count(rows)
    } else {
        1
    };
    if workers <= 1 || rows == 0 {
        kernel(0, out);
        return;
    }
    let chunk_rows = rows.div_ceil(workers);
    std::thread::scope(|s| {
        for (ci, chunk) in out.chunks_mut(chunk_rows * row_width).enumerate() {
            let kernel = &kernel;
            s.spawn(move || kernel(ci * chunk_rows, chunk));
        }
    });
}

fn check2(t: &Tensor) -> Result<(usize, usize)> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.shape().rank(),
        });
    }
    Ok((t.shape().dims()[0], t.shape().dims()[1]))
}

/// `C = A · B` for `A: [m, k]`, `B: [k, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrices and
/// [`TensorError::InnerDimMismatch`] if `A`'s columns differ from `B`'s rows.
///
/// # Example
///
/// ```
/// use stepping_tensor::{matmul::matmul, Shape, Tensor};
///
/// let a = Tensor::from_vec(Shape::of(&[1, 2]), vec![1.0, 2.0])?;
/// let b = Tensor::from_vec(Shape::of(&[2, 1]), vec![3.0, 4.0])?;
/// assert_eq!(matmul(&a, &b)?.data(), &[11.0]);
/// # Ok::<(), stepping_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check2(a)?;
    let (kb, n) = check2(b)?;
    if ka != kb {
        return Err(TensorError::InnerDimMismatch {
            left: ka,
            right: kb,
        });
    }
    let mut out = Tensor::zeros(Shape::of(&[m, n]));
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    par_rows(od, m, n, m * ka * n, |row0, chunk| {
        let rows = chunk.len() / n;
        for k0 in (0..ka).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(ka);
            for r in 0..rows {
                let i = row0 + r;
                let arow = &ad[i * ka..(i + 1) * ka];
                let orow = &mut chunk[r * n..(r + 1) * n];
                for k in k0..k1 {
                    let aik = arow[k];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &bd[k * n..(k + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                        *o += aik * bv;
                    }
                }
            }
        }
    });
    Ok(out)
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]`.
///
/// This variant is the natural layout for `Linear` forward passes where the
/// weight matrix is stored `[out, in]`.
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check2(a)?;
    let (n, kb) = check2(b)?;
    if ka != kb {
        return Err(TensorError::InnerDimMismatch {
            left: ka,
            right: kb,
        });
    }
    let mut out = Tensor::zeros(Shape::of(&[m, n]));
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    par_rows(od, m, n, m * ka * n, |row0, chunk| {
        let rows = chunk.len() / n;
        for r in 0..rows {
            let i = row0 + r;
            let arow = &ad[i * ka..(i + 1) * ka];
            for j in 0..n {
                let brow = &bd[j * kb..(j + 1) * kb];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow.iter()) {
                    acc += av * bv;
                }
                chunk[r * n + j] = acc;
            }
        }
    });
    Ok(out)
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]`.
///
/// This variant computes weight gradients (`dW = xᵀ · dy`) without explicit
/// transposition.
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ka, m) = check2(a)?;
    let (kb, n) = check2(b)?;
    if ka != kb {
        return Err(TensorError::InnerDimMismatch {
            left: ka,
            right: kb,
        });
    }
    let mut out = Tensor::zeros(Shape::of(&[m, n]));
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for k in 0..ka {
        let arow = &ad[k * m..(k + 1) * m];
        let brow = &bd[k * n..(k + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    Ok(out)
}

/// Matrix–vector product `y = A · x` for `A: [m, k]`, `x: [k]`.
///
/// # Errors
///
/// Returns rank/dimension errors as in [`matmul`].
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    let (m, k) = check2(a)?;
    if x.shape().rank() != 1 {
        return Err(TensorError::RankMismatch {
            expected: 1,
            actual: x.shape().rank(),
        });
    }
    if x.len() != k {
        return Err(TensorError::InnerDimMismatch {
            left: k,
            right: x.len(),
        });
    }
    let mut out = Tensor::zeros(Shape::of(&[m]));
    let (ad, xd) = (a.data(), x.data());
    let od = out.data_mut();
    for i in 0..m {
        let row = &ad[i * k..(i + 1) * k];
        od[i] = row.iter().zip(xd.iter()).map(|(&a, &b)| a * b).sum();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dims()[0], a.shape().dims()[1]);
        let n = b.shape().dims()[1];
        let mut out = Tensor::zeros(Shape::of(&[m, n]));
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                out.data_mut()[i * n + j] = acc;
            }
        }
        out
    }

    fn seq(shape: &[usize]) -> Tensor {
        let len: usize = shape.iter().product();
        Tensor::from_vec(
            Shape::of(shape),
            (0..len).map(|i| (i as f32) * 0.5 - 3.0).collect(),
        )
        .unwrap()
    }

    #[test]
    fn matmul_matches_naive() {
        let a = seq(&[7, 130]);
        let b = seq(&[130, 5]);
        let fast = matmul(&a, &b).unwrap();
        let slow = naive(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_bt_equals_matmul_with_transpose() {
        let a = seq(&[4, 6]);
        let b = seq(&[3, 6]);
        let direct = matmul_bt(&a, &b).unwrap();
        let via_t = matmul(&a, &b.transpose2().unwrap()).unwrap();
        assert_eq!(direct, via_t);
    }

    #[test]
    fn matmul_at_equals_matmul_with_transpose() {
        let a = seq(&[6, 4]);
        let b = seq(&[6, 3]);
        let direct = matmul_at(&a, &b).unwrap();
        let via_t = matmul(&a.transpose2().unwrap(), &b).unwrap();
        assert_eq!(direct, via_t);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = seq(&[5, 9]);
        let x = seq(&[9]);
        let xm = x.reshape(Shape::of(&[9, 1])).unwrap();
        let ym = matmul(&a, &xm).unwrap();
        let y = matvec(&a, &x).unwrap();
        assert_eq!(y.data(), ym.data());
    }

    #[test]
    fn dimension_errors() {
        let a = seq(&[2, 3]);
        let b = seq(&[4, 5]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::InnerDimMismatch { .. })
        ));
        let v = seq(&[3]);
        assert!(matmul(&a, &v).is_err());
    }

    #[test]
    fn parallel_path_matches_serial() {
        // big enough to cross PARALLEL_FLOP_THRESHOLD
        let a = seq(&[300, 200]);
        let b = seq(&[200, 100]);
        let big = matmul(&a, &b).unwrap();
        let slow = naive(&a, &b);
        for (x, y) in big.data().iter().zip(slow.data().iter()) {
            assert!((x - y).abs() < (y.abs() * 1e-4).max(1e-2), "{x} vs {y}");
        }
        let bt_b = seq(&[100, 200]);
        let bt = matmul_bt(&a, &bt_b).unwrap();
        let via = matmul(&a, &bt_b.transpose2().unwrap()).unwrap();
        assert_eq!(bt, via);
    }

    #[test]
    fn identity_is_neutral() {
        let a = seq(&[3, 3]);
        let mut eye = Tensor::zeros(Shape::of(&[3, 3]));
        for i in 0..3 {
            eye.set(&[i, i], 1.0).unwrap();
        }
        assert_eq!(matmul(&a, &eye).unwrap(), a);
        assert_eq!(matmul(&eye, &a).unwrap(), a);
    }
}
