//! Blocked matrix multiplication kernels.
//!
//! These are the hot loops behind every [`Linear`](../../stepping_nn) layer
//! and the `im2col` formulation of convolution. All kernels operate on
//! rank-2 [`Tensor`]s and are cache-blocked over the inner dimension.
//!
//! One general kernel, [`gemm`], handles every transpose combination via a
//! [`GemmSpec`]; the historical entry points [`matmul`], [`matmul_bt`] and
//! [`matmul_at`] are documented thin wrappers kept for their
//! self-explanatory names. Each transpose combination preserves the exact
//! loop structure (and therefore the exact floating-point rounding) of the
//! original per-function kernels — the incremental-property tests depend on
//! bit-identical results.
//!
//! These are the *masked-reference* kernels: they serve the full-width
//! masked paths (where operands are mostly zero, so the `nn`/`tn` kernels
//! keep their `if aik == 0.0` skip) and act as the oracle the blocked
//! [`microkernel`](crate::microkernel) — which has no zero-skip, because
//! packed panels are dense by construction — is property-tested against.

use crate::{Result, Shape, Tensor, TensorError};

/// Cache block size (elements) for the k-loop; tuned for L1-resident panels.
const BLOCK: usize = 64;

/// Below this many multiply-adds a product stays single-threaded (thread
/// spawn overhead would dominate).
const PARALLEL_FLOP_THRESHOLD: usize = 4_000_000;

/// Number of worker threads for large products.
fn worker_count(rows: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(rows)
        .min(8)
}

/// Runs `kernel` over disjoint row chunks of `out`, in parallel when the
/// problem is big enough. `kernel(row_offset, out_rows)` must fill the given
/// rows only.
fn par_rows<F>(out: &mut [f32], rows: usize, row_width: usize, flops: usize, kernel: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let workers = if flops >= PARALLEL_FLOP_THRESHOLD {
        worker_count(rows)
    } else {
        1
    };
    if workers <= 1 || rows == 0 {
        kernel(0, out);
        return;
    }
    let chunk_rows = rows.div_ceil(workers);
    std::thread::scope(|s| {
        for (ci, chunk) in out.chunks_mut(chunk_rows * row_width).enumerate() {
            let kernel = &kernel;
            s.spawn(move || kernel(ci * chunk_rows, chunk));
        }
    });
}

fn check2(t: &Tensor) -> Result<(usize, usize)> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.shape().rank(),
        });
    }
    Ok((t.shape().dims()[0], t.shape().dims()[1]))
}

/// Transpose flags for [`gemm`]: which operands are read transposed.
///
/// The default (`NN`) multiplies the operands as stored. Construct via
/// struct literal or the named presets.
///
/// # Example
///
/// ```
/// use stepping_tensor::matmul::GemmSpec;
///
/// assert_eq!(GemmSpec::NT, GemmSpec { trans_a: false, trans_b: true });
/// assert_eq!(GemmSpec::default(), GemmSpec::NN);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GemmSpec {
    /// Read `A` transposed (`Aᵀ`).
    pub trans_a: bool,
    /// Read `B` transposed (`Bᵀ`).
    pub trans_b: bool,
}

impl GemmSpec {
    /// `C = A · B` (no transposition).
    pub const NN: GemmSpec = GemmSpec {
        trans_a: false,
        trans_b: false,
    };
    /// `C = A · Bᵀ` — the `Linear` forward layout (`W: [out, in]`).
    pub const NT: GemmSpec = GemmSpec {
        trans_a: false,
        trans_b: true,
    };
    /// `C = Aᵀ · B` — the weight-gradient layout (`dW = xᵀ · dy`).
    pub const TN: GemmSpec = GemmSpec {
        trans_a: true,
        trans_b: false,
    };
    /// `C = Aᵀ · Bᵀ`.
    pub const TT: GemmSpec = GemmSpec {
        trans_a: true,
        trans_b: true,
    };
}

/// General matrix multiply `C = op(A) · op(B)` where `op` optionally
/// transposes each operand per `spec`.
///
/// Expected shapes (with result `[m, n]` and inner dimension `k`):
///
/// | spec | `A` | `B` |
/// |---|---|---|
/// | [`GemmSpec::NN`] | `[m, k]` | `[k, n]` |
/// | [`GemmSpec::NT`] | `[m, k]` | `[n, k]` |
/// | [`GemmSpec::TN`] | `[k, m]` | `[k, n]` |
/// | [`GemmSpec::TT`] | `[k, m]` | `[n, k]` |
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrices and
/// [`TensorError::InnerDimMismatch`] if the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use stepping_tensor::matmul::{gemm, GemmSpec};
/// use stepping_tensor::{Shape, Tensor};
///
/// let a = Tensor::from_vec(Shape::of(&[1, 2]), vec![1.0, 2.0])?;
/// let b = Tensor::from_vec(Shape::of(&[1, 2]), vec![3.0, 4.0])?;
/// assert_eq!(gemm(&a, &b, GemmSpec::NT)?.data(), &[11.0]);
/// # Ok::<(), stepping_tensor::TensorError>(())
/// ```
pub fn gemm(a: &Tensor, b: &Tensor, spec: GemmSpec) -> Result<Tensor> {
    let (a0, a1) = check2(a)?;
    let (b0, b1) = check2(b)?;
    let (m, ka) = if spec.trans_a { (a1, a0) } else { (a0, a1) };
    let (kb, n) = if spec.trans_b { (b1, b0) } else { (b0, b1) };
    if ka != kb {
        return Err(TensorError::InnerDimMismatch {
            left: ka,
            right: kb,
        });
    }
    let (ad, bd) = (a.data(), b.data());
    // NN/TN accumulate into the output (and skip zero A entries), so they
    // need a zeroed buffer; serial NT/TT write every element exactly once
    // in row-major order and stream into unfilled storage instead. The
    // parallel NT path keeps the zeroed buffer: disjoint row chunks need
    // initialised storage to split safely.
    let out = match (spec.trans_a, spec.trans_b) {
        (false, false) => {
            let mut out = Tensor::zeros(Shape::of(&[m, n]));
            nn_kernel(ad, bd, out.data_mut(), m, ka, n);
            out
        }
        (false, true) => {
            if m * ka * n >= PARALLEL_FLOP_THRESHOLD && worker_count(m) > 1 {
                let mut out = Tensor::zeros(Shape::of(&[m, n]));
                nt_kernel(ad, bd, out.data_mut(), m, ka, n);
                out
            } else {
                nt_stream(ad, bd, m, ka, n)
            }
        }
        (true, false) => {
            let mut out = Tensor::zeros(Shape::of(&[m, n]));
            tn_kernel(ad, bd, out.data_mut(), m, ka, n);
            out
        }
        (true, true) => tt_stream(ad, bd, m, ka, n),
    };
    Ok(out)
}

/// `C = A · B`: k-blocked, row-parallel, skipping zero `A` entries.
fn nn_kernel(ad: &[f32], bd: &[f32], od: &mut [f32], m: usize, ka: usize, n: usize) {
    par_rows(od, m, n, m * ka * n, |row0, chunk| {
        let rows = chunk.len() / n;
        for k0 in (0..ka).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(ka);
            for r in 0..rows {
                let i = row0 + r;
                let arow = &ad[i * ka..(i + 1) * ka];
                let orow = &mut chunk[r * n..(r + 1) * n];
                for k in k0..k1 {
                    let aik = arow[k];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &bd[k * n..(k + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                        *o += aik * bv;
                    }
                }
            }
        }
    });
}

/// `C = A · Bᵀ`: both operands row-major over `k`, dot-product form.
///
/// `pub(crate)` so the [`pack`](crate::pack) module can run packed panels
/// through the exact same loop (and therefore the exact same rounding) as
/// [`matmul_bt`].
pub(crate) fn nt_kernel(ad: &[f32], bd: &[f32], od: &mut [f32], m: usize, ka: usize, n: usize) {
    if m == 0 || n == 0 {
        // packed panels may be degenerate (a subnet with no active outputs)
        return;
    }
    par_rows(od, m, n, m * ka * n, |row0, chunk| {
        let rows = chunk.len() / n;
        for r in 0..rows {
            let i = row0 + r;
            let arow = &ad[i * ka..(i + 1) * ka];
            for j in 0..n {
                let brow = &bd[j * ka..(j + 1) * ka];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow.iter()) {
                    acc += av * bv;
                }
                chunk[r * n + j] = acc;
            }
        }
    });
}

/// Serial [`nt_kernel`] streaming into unfilled storage: the dot-product
/// form writes each output element exactly once, in strictly ascending
/// row-major order, so the result `Vec` is built by `push` instead of
/// zero-filling `m * n` floats first. Arithmetic (and therefore rounding)
/// is identical to [`nt_kernel`] term for term.
fn nt_stream(ad: &[f32], bd: &[f32], m: usize, ka: usize, n: usize) -> Tensor {
    let mut data = Vec::with_capacity(m * n);
    for i in 0..m {
        let arow = &ad[i * ka..(i + 1) * ka];
        for j in 0..n {
            let brow = &bd[j * ka..(j + 1) * ka];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            data.push(acc);
        }
    }
    Tensor::from_vec(Shape::of(&[m, n]), data).expect("extent matches shape")
}

/// `C = Aᵀ · B`: outer-product accumulation over `k`, skipping zero `A`
/// entries (gradient layout; `m`/`n` are small, `k` is the batch).
fn tn_kernel(ad: &[f32], bd: &[f32], od: &mut [f32], m: usize, ka: usize, n: usize) {
    for k in 0..ka {
        let arow = &ad[k * m..(k + 1) * m];
        let brow = &bd[k * n..(k + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// `C = Aᵀ · Bᵀ`: column gather on `A`, strided reads on `B`. Streams into
/// unfilled storage — each element is written exactly once in row-major
/// order, so no zero-fill is needed.
fn tt_stream(ad: &[f32], bd: &[f32], m: usize, ka: usize, n: usize) -> Tensor {
    let mut data = Vec::with_capacity(m * n);
    for i in 0..m {
        for j in 0..n {
            let brow = &bd[j * ka..(j + 1) * ka];
            let mut acc = 0.0f32;
            for (k, &bv) in brow.iter().enumerate() {
                acc += ad[k * m + i] * bv;
            }
            data.push(acc);
        }
    }
    Tensor::from_vec(Shape::of(&[m, n]), data).expect("extent matches shape")
}

/// `C = A · B` for `A: [m, k]`, `B: [k, n]`.
///
/// Thin wrapper over [`gemm`] with [`GemmSpec::NN`].
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrices and
/// [`TensorError::InnerDimMismatch`] if `A`'s columns differ from `B`'s rows.
///
/// # Example
///
/// ```
/// use stepping_tensor::{matmul::matmul, Shape, Tensor};
///
/// let a = Tensor::from_vec(Shape::of(&[1, 2]), vec![1.0, 2.0])?;
/// let b = Tensor::from_vec(Shape::of(&[2, 1]), vec![3.0, 4.0])?;
/// assert_eq!(matmul(&a, &b)?.data(), &[11.0]);
/// # Ok::<(), stepping_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    gemm(a, b, GemmSpec::NN)
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]`.
///
/// This variant is the natural layout for `Linear` forward passes where the
/// weight matrix is stored `[out, in]`. Thin wrapper over [`gemm`] with
/// [`GemmSpec::NT`].
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    gemm(a, b, GemmSpec::NT)
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]`.
///
/// This variant computes weight gradients (`dW = xᵀ · dy`) without explicit
/// transposition. Thin wrapper over [`gemm`] with [`GemmSpec::TN`].
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    gemm(a, b, GemmSpec::TN)
}

/// Matrix–vector product `y = A · x` for `A: [m, k]`, `x: [k]`.
///
/// # Errors
///
/// Returns rank/dimension errors as in [`matmul`].
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    let (m, k) = check2(a)?;
    if x.shape().rank() != 1 {
        return Err(TensorError::RankMismatch {
            expected: 1,
            actual: x.shape().rank(),
        });
    }
    if x.len() != k {
        return Err(TensorError::InnerDimMismatch {
            left: k,
            right: x.len(),
        });
    }
    let mut out = Tensor::zeros(Shape::of(&[m]));
    let (ad, xd) = (a.data(), x.data());
    let od = out.data_mut();
    for i in 0..m {
        let row = &ad[i * k..(i + 1) * k];
        od[i] = row.iter().zip(xd.iter()).map(|(&a, &b)| a * b).sum();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dims()[0], a.shape().dims()[1]);
        let n = b.shape().dims()[1];
        let mut out = Tensor::zeros(Shape::of(&[m, n]));
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                out.data_mut()[i * n + j] = acc;
            }
        }
        out
    }

    fn seq(shape: &[usize]) -> Tensor {
        let len: usize = shape.iter().product();
        Tensor::from_vec(
            Shape::of(shape),
            (0..len).map(|i| (i as f32) * 0.5 - 3.0).collect(),
        )
        .unwrap()
    }

    #[test]
    fn matmul_matches_naive() {
        let a = seq(&[7, 130]);
        let b = seq(&[130, 5]);
        let fast = matmul(&a, &b).unwrap();
        let slow = naive(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_bt_equals_matmul_with_transpose() {
        let a = seq(&[4, 6]);
        let b = seq(&[3, 6]);
        let direct = matmul_bt(&a, &b).unwrap();
        let via_t = matmul(&a, &b.transpose2().unwrap()).unwrap();
        assert_eq!(direct, via_t);
    }

    #[test]
    fn matmul_at_equals_matmul_with_transpose() {
        let a = seq(&[6, 4]);
        let b = seq(&[6, 3]);
        let direct = matmul_at(&a, &b).unwrap();
        let via_t = matmul(&a.transpose2().unwrap(), &b).unwrap();
        assert_eq!(direct, via_t);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = seq(&[5, 9]);
        let x = seq(&[9]);
        let xm = x.reshape(Shape::of(&[9, 1])).unwrap();
        let ym = matmul(&a, &xm).unwrap();
        let y = matvec(&a, &x).unwrap();
        assert_eq!(y.data(), ym.data());
    }

    #[test]
    fn dimension_errors() {
        let a = seq(&[2, 3]);
        let b = seq(&[4, 5]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::InnerDimMismatch { .. })
        ));
        let v = seq(&[3]);
        assert!(matmul(&a, &v).is_err());
    }

    #[test]
    fn parallel_path_matches_serial() {
        // big enough to cross PARALLEL_FLOP_THRESHOLD
        let a = seq(&[300, 200]);
        let b = seq(&[200, 100]);
        let big = matmul(&a, &b).unwrap();
        let slow = naive(&a, &b);
        for (x, y) in big.data().iter().zip(slow.data().iter()) {
            assert!((x - y).abs() < (y.abs() * 1e-4).max(1e-2), "{x} vs {y}");
        }
        let bt_b = seq(&[100, 200]);
        let bt = matmul_bt(&a, &bt_b).unwrap();
        let via = matmul(&a, &bt_b.transpose2().unwrap()).unwrap();
        assert_eq!(bt, via);
    }

    /// The pre-`gemm` `matmul` kernel, kept verbatim as a reference.
    fn old_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, ka) = (a.shape().dims()[0], a.shape().dims()[1]);
        let n = b.shape().dims()[1];
        let mut out = Tensor::zeros(Shape::of(&[m, n]));
        let (ad, bd) = (a.data(), b.data());
        let od = out.data_mut();
        par_rows(od, m, n, m * ka * n, |row0, chunk| {
            let rows = chunk.len() / n;
            for k0 in (0..ka).step_by(BLOCK) {
                let k1 = (k0 + BLOCK).min(ka);
                for r in 0..rows {
                    let i = row0 + r;
                    let arow = &ad[i * ka..(i + 1) * ka];
                    let orow = &mut chunk[r * n..(r + 1) * n];
                    for k in k0..k1 {
                        let aik = arow[k];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &bd[k * n..(k + 1) * n];
                        for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                            *o += aik * bv;
                        }
                    }
                }
            }
        });
        out
    }

    /// The pre-`gemm` `matmul_bt` kernel, kept verbatim as a reference.
    fn old_matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, ka) = (a.shape().dims()[0], a.shape().dims()[1]);
        let n = b.shape().dims()[0];
        let mut out = Tensor::zeros(Shape::of(&[m, n]));
        let (ad, bd) = (a.data(), b.data());
        let od = out.data_mut();
        par_rows(od, m, n, m * ka * n, |row0, chunk| {
            let rows = chunk.len() / n;
            for r in 0..rows {
                let i = row0 + r;
                let arow = &ad[i * ka..(i + 1) * ka];
                for j in 0..n {
                    let brow = &bd[j * ka..(j + 1) * ka];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in arow.iter().zip(brow.iter()) {
                        acc += av * bv;
                    }
                    chunk[r * n + j] = acc;
                }
            }
        });
        out
    }

    /// The pre-`gemm` `matmul_at` kernel, kept verbatim as a reference.
    fn old_matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
        let (ka, m) = (a.shape().dims()[0], a.shape().dims()[1]);
        let n = b.shape().dims()[1];
        let mut out = Tensor::zeros(Shape::of(&[m, n]));
        let (ad, bd) = (a.data(), b.data());
        let od = out.data_mut();
        for k in 0..ka {
            let arow = &ad[k * m..(k + 1) * m];
            let brow = &bd[k * n..(k + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut od[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    #[test]
    fn wrappers_bit_identical_to_old_kernels() {
        // small (serial) and large (parallel-path) problem sizes
        for &(m, k, n) in &[(3usize, 5usize, 4usize), (300, 200, 100)] {
            let a = seq(&[m, k]);
            let b = seq(&[k, n]);
            assert_eq!(
                matmul(&a, &b).unwrap(),
                old_matmul(&a, &b),
                "NN {m}x{k}x{n}"
            );
            let bt = seq(&[n, k]);
            assert_eq!(
                matmul_bt(&a, &bt).unwrap(),
                old_matmul_bt(&a, &bt),
                "NT {m}x{k}x{n}"
            );
            let at = seq(&[k, m]);
            assert_eq!(
                matmul_at(&at, &b).unwrap(),
                old_matmul_at(&at, &b),
                "TN {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn gemm_tt_equals_double_transpose() {
        let a = seq(&[6, 4]); // Aᵀ: [4, 6]
        let b = seq(&[3, 6]); // Bᵀ: [6, 3]
        let direct = gemm(&a, &b, GemmSpec::TT).unwrap();
        let via_t = matmul(&a.transpose2().unwrap(), &b.transpose2().unwrap()).unwrap();
        assert_eq!(direct.shape().dims(), &[4, 3]);
        for (x, y) in direct.data().iter().zip(via_t.data().iter()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_validates_all_spec_shapes() {
        let a = seq(&[2, 3]);
        let b = seq(&[4, 5]);
        for spec in [GemmSpec::NN, GemmSpec::NT, GemmSpec::TN, GemmSpec::TT] {
            assert!(matches!(
                gemm(&a, &b, spec),
                Err(TensorError::InnerDimMismatch { .. })
            ));
        }
        let v = seq(&[3]);
        assert!(gemm(&a, &v, GemmSpec::NN).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let a = seq(&[3, 3]);
        let mut eye = Tensor::zeros(Shape::of(&[3, 3]));
        for i in 0..3 {
            eye.set(&[i, i], 1.0).unwrap();
        }
        assert_eq!(matmul(&a, &eye).unwrap(), a);
        assert_eq!(matmul(&eye, &a).unwrap(), a);
    }
}
