//! Gradient buffer collections for data-parallel training.
//!
//! A [`GradStore`] is an ordered list of gradient tensors — one slot per
//! trainable parameter, in the parameter order the owning network exposes.
//! Replica workers export one store per shard; the trainer merges them with
//! `stepping-exec`'s fixed-order tree reduction and imports the result back
//! into the master network's parameters.

use crate::{Result, Tensor, TensorError};

/// An ordered collection of gradient tensors, index-aligned with a
/// network's parameter list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GradStore {
    slots: Vec<Tensor>,
}

impl GradStore {
    /// Wraps gradient tensors in declaration order.
    pub fn new(slots: Vec<Tensor>) -> Self {
        GradStore { slots }
    }

    /// Number of gradient slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the store has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The gradient tensor at `i`, if present.
    pub fn get(&self, i: usize) -> Option<&Tensor> {
        self.slots.get(i)
    }

    /// Iterates the gradient tensors in slot order.
    pub fn iter(&self) -> std::slice::Iter<'_, Tensor> {
        self.slots.iter()
    }

    /// Elementwise `self += other`, slot by slot — the pairwise combine of
    /// the gradient tree reduction (`self` must be the lower-index operand
    /// to keep the association canonical).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] on slot-count mismatch and
    /// shape errors on per-slot shape mismatch.
    pub fn add_assign(&mut self, other: &GradStore) -> Result<()> {
        if self.slots.len() != other.slots.len() {
            return Err(TensorError::InvalidArgument(format!(
                "gradient stores have {} vs {} slots",
                self.slots.len(),
                other.slots.len()
            )));
        }
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            a.zip_in_place(b, |x, y| x + y)?;
        }
        Ok(())
    }

    /// Scales every gradient element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for t in &mut self.slots {
            t.scale(alpha);
        }
    }
}

impl IntoIterator for GradStore {
    type Item = Tensor;
    type IntoIter = std::vec::IntoIter<Tensor>;

    fn into_iter(self) -> Self::IntoIter {
        self.slots.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn add_assign_merges_slotwise() {
        let mut a = GradStore::new(vec![
            Tensor::full(Shape::of(&[2]), 1.0),
            Tensor::full(Shape::of(&[3]), 2.0),
        ]);
        let b = GradStore::new(vec![
            Tensor::full(Shape::of(&[2]), 0.5),
            Tensor::full(Shape::of(&[3]), -1.0),
        ]);
        a.add_assign(&b).unwrap();
        assert_eq!(a.get(0).unwrap().data(), &[1.5, 1.5]);
        assert_eq!(a.get(1).unwrap().data(), &[1.0, 1.0, 1.0]);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn mismatches_are_rejected() {
        let mut a = GradStore::new(vec![Tensor::zeros(Shape::of(&[2]))]);
        let b = GradStore::default();
        assert!(a.add_assign(&b).is_err());
        let c = GradStore::new(vec![Tensor::zeros(Shape::of(&[3]))]);
        assert!(a.add_assign(&c).is_err());
    }

    #[test]
    fn scale_applies_to_every_slot() {
        let mut a = GradStore::new(vec![Tensor::full(Shape::of(&[2]), 2.0)]);
        a.scale(0.5);
        assert_eq!(a.get(0).unwrap().data(), &[1.0, 1.0]);
        let collected: Vec<Tensor> = a.clone().into_iter().collect();
        assert_eq!(collected.len(), 1);
        assert_eq!(a.iter().count(), 1);
    }
}
