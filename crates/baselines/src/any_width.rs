//! The any-width network baseline \[13\]: regular, index-ordered subnet
//! structures on top of the SteppingNet machinery.
//!
//! In the any-width network the subnets are "manually determined" and
//! "must follow the regular pattern" (paper §II): the first `w_k·W` neurons
//! of every layer form subnet `k`. Triangular connectivity (a neuron reads
//! only neurons of its own or smaller width classes) is the same legality
//! rule as SteppingNet's, so we express an any-width instance as a
//! [`SteppingNet`] with index-ordered assignments — and *skip* the
//! importance-driven construction that is SteppingNet's contribution.

use stepping_core::{Result, SteppingError, SteppingNet};
use stepping_data::{BatchIter, Dataset, Split};
use stepping_nn::{loss, optim::Sgd};

/// Assigns the first `fraction[k]` of every masked stage's neurons to subnet
/// `≤ k` (regular pattern, Fig. 1(b) of the paper). `fractions` must be
/// ascending in `(0, 1]`; neurons beyond the last fraction go to the unused
/// pool.
///
/// # Errors
///
/// Returns [`SteppingError::BadConfig`] for a fraction vector that is not
/// ascending in `(0, 1]` or whose length differs from the subnet count.
pub fn regular_assign(net: &mut SteppingNet, fractions: &[f64]) -> Result<()> {
    let n = net.subnet_count();
    if fractions.len() != n {
        return Err(SteppingError::BadConfig(format!(
            "{} width fractions for {n} subnets",
            fractions.len()
        )));
    }
    if !fractions.windows(2).all(|w| w[0] < w[1])
        || fractions
            .iter()
            .any(|f| !(0.0..=1.0).contains(f) || *f <= 0.0)
    {
        return Err(SteppingError::BadConfig(
            "width fractions must be ascending within (0, 1]".into(),
        ));
    }
    let mut moves = Vec::new();
    for si in net.masked_stage_indices() {
        let count = net.stages()[si].neuron_count().expect("masked stage");
        // cut[k] = number of neurons active in subnet k (at least 1)
        let cuts: Vec<usize> = fractions
            .iter()
            .map(|f| ((count as f64 * f).ceil() as usize).clamp(1, count))
            .collect();
        for i in 0..count {
            let target = cuts.iter().position(|&c| i < c).unwrap_or(n);
            moves.push((si, i, target));
        }
    }
    net.move_neurons(&moves)
}

/// Finds per-subnet width fractions whose MAC counts approach (but do not
/// exceed) `targets`, by monotone bisection per subnet, and installs them via
/// [`regular_assign`]. Returns the fitted fractions.
///
/// # Errors
///
/// Returns [`SteppingError::BadConfig`] when `targets` has the wrong length
/// or even the minimum structure (one neuron per layer) exceeds a target.
pub fn fit_widths_to_macs(
    net: &mut SteppingNet,
    targets: &[u64],
    prune_threshold: f32,
) -> Result<Vec<f64>> {
    let n = net.subnet_count();
    if targets.len() != n {
        return Err(SteppingError::BadConfig(format!(
            "{} targets for {n} subnets",
            targets.len()
        )));
    }
    let mut fractions = vec![1.0f64; n];
    // Fit smallest-first: macs(k) only depends on fractions[0..=k].
    for k in 0..n {
        let lo_bound = if k == 0 { 0.0 } else { fractions[k - 1] };
        let mut lo = lo_bound;
        let mut hi = 1.0f64;
        let mut best = None;
        for _ in 0..24 {
            let mid = 0.5 * (lo + hi);
            let mut trial = fractions.clone();
            trial[k] = mid;
            // fractions above k must stay ascending for regular_assign
            for j in k + 1..n {
                trial[j] = trial[j - 1] + (1.0 - trial[j - 1]) * 0.5;
            }
            if ascending(&trial) {
                regular_assign(net, &trial)?;
                if net.macs(k, prune_threshold) <= targets[k] {
                    best = Some(mid);
                    lo = mid;
                } else {
                    hi = mid;
                }
            } else {
                hi = mid;
            }
        }
        fractions[k] = best.ok_or_else(|| {
            SteppingError::BadConfig(format!(
                "cannot meet MAC target {} for subnet {k} even at minimum width",
                targets[k]
            ))
        })?;
    }
    // ensure strictly ascending after rounding
    for k in 1..n {
        if fractions[k] <= fractions[k - 1] {
            fractions[k] = (fractions[k - 1] + f64::EPSILON * 8.0).min(1.0);
        }
    }
    regular_assign(net, &fractions)?;
    Ok(fractions)
}

fn ascending(f: &[f64]) -> bool {
    f.windows(2).all(|w| w[0] < w[1]) && f.iter().all(|v| *v > 0.0 && *v <= 1.0)
}

/// Options for [`train_joint`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JointTrainOptions {
    /// Epochs over the training split.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for JointTrainOptions {
    fn default() -> Self {
        JointTrainOptions {
            epochs: 5,
            batch_size: 32,
            lr: 0.05,
            seed: 0,
        }
    }
}

/// Joint training of every subnet (the any-width / slimmable training
/// recipe): on each batch, each subnet takes one cross-entropy SGD step,
/// smallest first. Returns the mean loss per epoch per subnet.
///
/// # Errors
///
/// Returns configuration errors and propagates training errors.
pub fn train_joint(
    net: &mut SteppingNet,
    data: &dyn Dataset,
    opts: &JointTrainOptions,
) -> Result<Vec<Vec<f32>>> {
    if opts.epochs == 0 || opts.batch_size == 0 {
        return Err(SteppingError::BadConfig(
            "epochs and batch size must be nonzero".into(),
        ));
    }
    let n = net.subnet_count();
    let mut sgd = Sgd::new(opts.lr).map_err(SteppingError::Nn)?;
    let mut all = Vec::with_capacity(opts.epochs);
    for epoch in 0..opts.epochs {
        let mut sums = vec![0.0f32; n];
        let mut counts = vec![0usize; n];
        for batch in BatchIter::new(data, Split::Train, opts.batch_size, epoch as u64, opts.seed) {
            let (x, y) = batch?;
            for k in 0..n {
                net.zero_grad();
                let logits = net.forward(&x, k, true)?;
                let (l, dl) = loss::cross_entropy(&logits, &y).map_err(SteppingError::Nn)?;
                net.backward(&dl)?;
                sgd.step(&mut net.params_for(k)?)
                    .map_err(SteppingError::Nn)?;
                sums[k] += l;
                counts[k] += 1;
            }
        }
        for (s, c) in sums.iter_mut().zip(counts.iter()) {
            *s /= (*c).max(1) as f32;
        }
        all.push(sums);
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepping_core::SteppingNetBuilder;
    use stepping_data::{GaussianBlobs, GaussianBlobsConfig};
    use stepping_tensor::Shape;

    fn net() -> SteppingNet {
        SteppingNetBuilder::new(Shape::of(&[10]), 3, 2)
            .linear(20)
            .relu()
            .linear(16)
            .relu()
            .build(4)
            .unwrap()
    }

    #[test]
    fn regular_assign_orders_by_index() {
        let mut n = net();
        regular_assign(&mut n, &[0.25, 0.5, 1.0]).unwrap();
        let a = n.stages()[0].out_assign().unwrap();
        // 20 neurons: first 5 in subnet 0, next 5 in subnet 1, rest subnet 2
        assert_eq!(a.subnet_of(0), 0);
        assert_eq!(a.subnet_of(4), 0);
        assert_eq!(a.subnet_of(5), 1);
        assert_eq!(a.subnet_of(10), 2);
        assert_eq!(a.subnet_of(19), 2);
        n.check_invariants().unwrap();
    }

    #[test]
    fn regular_assign_validates_fractions() {
        let mut n = net();
        assert!(regular_assign(&mut n, &[0.5, 0.25, 1.0]).is_err());
        assert!(regular_assign(&mut n, &[0.0, 0.5, 1.0]).is_err());
        assert!(regular_assign(&mut n, &[0.5, 1.0]).is_err());
    }

    #[test]
    fn fitted_widths_meet_mac_targets() {
        let mut n = net();
        let full = n.full_macs();
        let targets = vec![full / 5, full / 2, (full as f64 * 0.9) as u64];
        let fr = fit_widths_to_macs(&mut n, &targets, 0.0).unwrap();
        assert!(fr.windows(2).all(|w| w[0] < w[1]), "{fr:?}");
        for (k, t) in targets.iter().enumerate() {
            let m = n.macs(k, 0.0);
            assert!(m <= *t, "subnet {k}: {m} > {t}");
            // should be a decent fit, not degenerate
            assert!(m as f64 >= *t as f64 * 0.3, "subnet {k}: {m} far below {t}");
        }
    }

    #[test]
    fn joint_training_reduces_losses() {
        let data = GaussianBlobs::new(
            GaussianBlobsConfig {
                classes: 4,
                features: 10,
                train_per_class: 25,
                test_per_class: 8,
                separation: 3.0,
                noise_std: 0.6,
            },
            5,
        )
        .unwrap();
        let mut n = net();
        regular_assign(&mut n, &[0.3, 0.6, 1.0]).unwrap();
        let losses = train_joint(
            &mut n,
            &data,
            &JointTrainOptions {
                epochs: 5,
                lr: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        let first: f32 = losses[0].iter().sum();
        let last: f32 = losses.last().unwrap().iter().sum();
        assert!(last < first, "{first} → {last}");
    }
}
