//! The slimmable network baseline \[10\]: switchable-width layers with
//! per-switch batch normalisation and full connectivity inside each switch.
//!
//! Key behavioural differences from SteppingNet (paper §II):
//!
//! * within a switch every active neuron reads **all** active inputs, so a
//!   neuron's value differs between switches (synapse `3→5` in Fig. 1(a)) —
//!   switching width therefore requires recomputation from scratch;
//! * batch-norm statistics differ per switch, so each switch stores its own
//!   [`BatchNorm2d`] instance ("different batch normalization layers need to
//!   be stored for the subnets").
//!
//! [`Slimmable::macs`] charges a full recomputation for every switch, which
//! is exactly how the Fig. 6 comparison uses it.

use rand::rngs::StdRng;
use stepping_core::{Result, SteppingError};
use stepping_data::{BatchIter, Dataset, Split};
use stepping_nn::{
    loss, metrics, optim::Sgd, BatchNorm2d, Flatten, Layer, Linear, MaxPool2d, Param, Relu,
};
use stepping_tensor::conv::{col2im, im2col, ConvGeometry};
use stepping_tensor::{init, matmul, reduce, Shape, Tensor};

use crate::any_width::JointTrainOptions;

fn active(full: usize, fraction: f64) -> usize {
    ((full as f64 * fraction).ceil() as usize).clamp(1, full)
}

/// How a slimmable layer's *input* width depends on the switch fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InWidth {
    /// Raw network input: always fully active.
    Fixed(usize),
    /// Produced by a previous slimmable layer of `full` outputs.
    Frac { full: usize },
    /// Flattened conv features: first `ceil(f·channels)·hw` features active.
    FracChannels { channels: usize, hw: usize },
}

impl InWidth {
    fn full(&self) -> usize {
        match *self {
            InWidth::Fixed(n) => n,
            InWidth::Frac { full } => full,
            InWidth::FracChannels { channels, hw } => channels * hw,
        }
    }

    fn active(&self, fraction: f64) -> usize {
        match *self {
            InWidth::Fixed(n) => n,
            InWidth::Frac { full } => active(full, fraction),
            InWidth::FracChannels { channels, hw } => active(channels, fraction) * hw,
        }
    }
}

#[derive(Debug)]
struct SlimLinear {
    weight: Param,
    bias: Param,
    in_width: InWidth,
    out_full: usize,
    cached: Option<(Tensor, usize, usize)>, // input, out_active, in_active
}

impl SlimLinear {
    fn new(in_width: InWidth, out_full: usize, rng: &mut StdRng) -> Self {
        let in_full = in_width.full();
        SlimLinear {
            weight: Param::new(init::kaiming(Shape::of(&[out_full, in_full]), in_full, rng)),
            bias: Param::new(Tensor::zeros(Shape::of(&[out_full]))),
            in_width,
            out_full,
            cached: None,
        }
    }

    fn forward(&mut self, x: &Tensor, fraction: f64) -> Result<Tensor> {
        let in_full = self.in_width.full();
        if x.shape().rank() != 2 || x.shape().dims()[1] != in_full {
            return Err(SteppingError::InvalidStructure(format!(
                "slim linear expects [n, {in_full}], got {}",
                x.shape()
            )));
        }
        let oa = active(self.out_full, fraction);
        let ia = self.in_width.active(fraction);
        let mut w = self.weight.value.clone();
        {
            let wd = w.data_mut();
            for o in 0..self.out_full {
                for i in 0..in_full {
                    if o >= oa || i >= ia {
                        wd[o * in_full + i] = 0.0;
                    }
                }
            }
        }
        let mut z = matmul::matmul_bt(x, &w)?;
        let n = x.shape().dims()[0];
        {
            let zd = z.data_mut();
            for o in 0..oa {
                let b = self.bias.value.data()[o];
                for bi in 0..n {
                    zd[bi * self.out_full + o] += b;
                }
            }
        }
        self.cached = Some((x.clone(), oa, ia));
        Ok(z)
    }

    fn backward(&mut self, g: &Tensor) -> Result<Tensor> {
        let (x, oa, ia) = self.cached.as_ref().ok_or_else(|| {
            SteppingError::ExecutorState("slim linear backward before forward".into())
        })?;
        let in_full = self.in_width.full();
        let dw = matmul::matmul_at(g, x)?;
        {
            let gd = self.weight.grad.data_mut();
            for o in 0..*oa {
                for i in 0..*ia {
                    gd[o * in_full + i] += dw.data()[o * in_full + i];
                }
            }
        }
        let db = reduce::sum_rows(g)?;
        for o in 0..*oa {
            self.bias.grad.data_mut()[o] += db.data()[o];
        }
        let mut w = self.weight.value.clone();
        {
            let wd = w.data_mut();
            for o in 0..self.out_full {
                for i in 0..in_full {
                    if o >= *oa || i >= *ia {
                        wd[o * in_full + i] = 0.0;
                    }
                }
            }
        }
        Ok(matmul::matmul(g, &w)?)
    }

    fn macs(&self, fraction: f64) -> u64 {
        (active(self.out_full, fraction) * self.in_width.active(fraction)) as u64
    }
}

#[derive(Debug)]
struct SlimConv {
    weight: Param,
    bias: Param,
    kernel: usize,
    stride: usize,
    padding: usize,
    in_width: InWidth,
    out_full: usize,
    positions: usize,
    cached: Option<(Tensor, ConvGeometry, usize, usize, usize)>, // cols, geom, batch, oa, ia
}

impl SlimConv {
    fn new(
        in_width: InWidth,
        out_full: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        positions: usize,
        rng: &mut StdRng,
    ) -> Self {
        let in_full = in_width.full();
        let fan_in = in_full * kernel * kernel;
        SlimConv {
            weight: Param::new(init::kaiming(
                Shape::of(&[out_full, in_full, kernel, kernel]),
                fan_in,
                rng,
            )),
            bias: Param::new(Tensor::zeros(Shape::of(&[out_full]))),
            kernel,
            stride,
            padding,
            in_width,
            out_full,
            positions,
            cached: None,
        }
    }

    fn masked_flat(&self, oa: usize, ia: usize) -> Result<Tensor> {
        let in_full = self.in_width.full();
        let kk = self.kernel * self.kernel;
        let patch = in_full * kk;
        let mut w = self
            .weight
            .value
            .reshape(Shape::of(&[self.out_full, patch]))?;
        {
            let wd = w.data_mut();
            for o in 0..self.out_full {
                for i in 0..in_full {
                    if o >= oa || i >= ia {
                        for e in 0..kk {
                            wd[o * patch + i * kk + e] = 0.0;
                        }
                    }
                }
            }
        }
        Ok(w)
    }

    fn forward(&mut self, x: &Tensor, fraction: f64) -> Result<Tensor> {
        let in_full = self.in_width.full();
        let dims = x.shape().dims();
        if dims.len() != 4 || dims[1] != in_full {
            return Err(SteppingError::InvalidStructure(format!(
                "slim conv expects [n, {in_full}, h, w], got {}",
                x.shape()
            )));
        }
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let geom = ConvGeometry::new(
            in_full,
            h,
            w,
            self.kernel,
            self.kernel,
            self.stride,
            self.padding,
        )?;
        let cols = im2col(x, &geom)?;
        let oa = active(self.out_full, fraction);
        let ia = match self.in_width {
            InWidth::Fixed(c) => c,
            InWidth::Frac { full } => active(full, fraction),
            InWidth::FracChannels { channels, .. } => active(channels, fraction),
        };
        let wf = self.masked_flat(oa, ia)?;
        let mut z = matmul::matmul_bt(&cols, &wf)?;
        {
            let rows = n * geom.positions();
            let zd = z.data_mut();
            for o in 0..oa {
                let b = self.bias.value.data()[o];
                for r in 0..rows {
                    zd[r * self.out_full + o] += b;
                }
            }
        }
        let out = mat_to_nchw(&z, n, self.out_full, geom.out_h, geom.out_w);
        self.cached = Some((cols, geom, n, oa, ia));
        Ok(out)
    }

    fn backward(&mut self, g: &Tensor) -> Result<Tensor> {
        let (cols, geom, n, oa, ia) = self.cached.as_ref().ok_or_else(|| {
            SteppingError::ExecutorState("slim conv backward before forward".into())
        })?;
        let gm = nchw_to_mat(g, *n, self.out_full, geom.out_h, geom.out_w);
        let dwf = matmul::matmul_at(&gm, cols)?;
        let in_full = self.in_width.full();
        let kk = self.kernel * self.kernel;
        let patch = in_full * kk;
        {
            let gd = self.weight.grad.data_mut();
            for o in 0..*oa {
                for i in 0..*ia {
                    for e in 0..kk {
                        let idx = o * patch + i * kk + e;
                        gd[idx] += dwf.data()[idx];
                    }
                }
            }
        }
        let db = reduce::sum_rows(&gm)?;
        for o in 0..*oa {
            self.bias.grad.data_mut()[o] += db.data()[o];
        }
        let wf = self.masked_flat(*oa, *ia)?;
        let dcols = matmul::matmul(&gm, &wf)?;
        Ok(col2im(&dcols, *n, geom)?)
    }

    fn macs(&self, fraction: f64) -> u64 {
        let ia = match self.in_width {
            InWidth::Fixed(c) => c,
            InWidth::Frac { full } => active(full, fraction),
            InWidth::FracChannels { channels, .. } => active(channels, fraction),
        };
        (active(self.out_full, fraction) * ia * self.kernel * self.kernel) as u64
            * self.positions as u64
    }
}

#[derive(Debug)]
enum SlimStage {
    Linear(SlimLinear),
    Conv(SlimConv),
    /// One batch-norm instance per switch (switchable BN).
    BatchNorm(Vec<BatchNorm2d>),
    Relu(Relu),
    MaxPool(MaxPool2d),
    Flatten(Flatten),
}

/// A slimmable network instance with `switches.len()` execution modes.
///
/// Built via [`SlimmableBuilder`].
#[derive(Debug)]
pub struct Slimmable {
    stages: Vec<SlimStage>,
    heads: Vec<Linear>,
    switches: Vec<f64>,
    classes: usize,
    input_shape: Shape,
    feature_width: InWidth,
    last_switch: Option<usize>,
}

impl Slimmable {
    /// Number of switches (execution modes).
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Current width fractions, ascending.
    pub fn switches(&self) -> &[f64] {
        &self.switches
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Shape of one input sample (no batch dimension).
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// Replaces the width fractions (e.g. after fitting to MAC targets).
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::BadConfig`] unless `switches` is ascending in
    /// `(0, 1]` with the same length as before.
    pub fn set_switches(&mut self, switches: Vec<f64>) -> Result<()> {
        if switches.len() != self.switches.len() {
            return Err(SteppingError::BadConfig(format!(
                "{} switches, expected {}",
                switches.len(),
                self.switches.len()
            )));
        }
        if !switches.windows(2).all(|w| w[0] < w[1])
            || switches.iter().any(|f| *f <= 0.0 || *f > 1.0)
        {
            return Err(SteppingError::BadConfig(
                "switches must be ascending within (0, 1]".into(),
            ));
        }
        self.switches = switches;
        Ok(())
    }

    /// Fits switch fractions so each switch's MACs approach but do not
    /// exceed `targets`; returns the fitted fractions.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::BadConfig`] when a target is unreachable.
    pub fn fit_switches_to_macs(&mut self, targets: &[u64]) -> Result<Vec<f64>> {
        if targets.len() != self.switches.len() {
            return Err(SteppingError::BadConfig(format!(
                "{} targets for {} switches",
                targets.len(),
                self.switches.len()
            )));
        }
        let mut fitted = Vec::with_capacity(targets.len());
        for (k, &t) in targets.iter().enumerate() {
            let (mut lo, mut hi) = (0.0f64, 1.0f64);
            let mut best = None;
            for _ in 0..24 {
                let mid = 0.5 * (lo + hi);
                if self.macs_at_fraction(mid) <= t {
                    best = Some(mid);
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let mut f = best.ok_or_else(|| {
                SteppingError::BadConfig(format!("cannot meet MAC target {t} for switch {k}"))
            })?;
            if let Some(&prev) = fitted.last() {
                if f <= prev {
                    f = (prev + 1e-9).min(1.0);
                }
            }
            fitted.push(f);
        }
        self.set_switches(fitted.clone())?;
        Ok(fitted)
    }

    /// MAC operations of one full execution at `switch` (slimmable networks
    /// recompute from scratch at every width, so this is also the cost of
    /// *switching to* that width).
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::SubnetOutOfRange`] for a bad switch index.
    pub fn macs(&self, switch: usize) -> Result<u64> {
        let f = *self
            .switches
            .get(switch)
            .ok_or(SteppingError::SubnetOutOfRange {
                subnet: switch,
                count: self.switches.len(),
            })?;
        Ok(self.macs_at_fraction(f))
    }

    fn macs_at_fraction(&self, fraction: f64) -> u64 {
        let mut total = 0u64;
        for s in &self.stages {
            total += match s {
                SlimStage::Linear(l) => l.macs(fraction),
                SlimStage::Conv(c) => c.macs(fraction),
                _ => 0,
            };
        }
        total + (self.feature_width.active(fraction) * self.classes) as u64
    }

    /// Forward pass at `switch`. Returns class logits.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::SubnetOutOfRange`] for a bad switch and
    /// propagates layer errors.
    pub fn forward(&mut self, x: &Tensor, switch: usize, train: bool) -> Result<Tensor> {
        let f = *self
            .switches
            .get(switch)
            .ok_or(SteppingError::SubnetOutOfRange {
                subnet: switch,
                count: self.switches.len(),
            })?;
        let mut a = x.clone();
        for s in &mut self.stages {
            a = match s {
                SlimStage::Linear(l) => l.forward(&a, f)?,
                SlimStage::Conv(c) => c.forward(&a, f)?,
                SlimStage::BatchNorm(bns) => {
                    bns[switch].forward(&a, train).map_err(SteppingError::Nn)?
                }
                SlimStage::Relu(r) => r.forward(&a, train).map_err(SteppingError::Nn)?,
                SlimStage::MaxPool(p) => p.forward(&a, train).map_err(SteppingError::Nn)?,
                SlimStage::Flatten(fl) => fl.forward(&a, train).map_err(SteppingError::Nn)?,
            };
        }
        // head over active features only
        let fa = self.feature_width.active(f);
        let full = self.feature_width.full();
        let n = a.shape().dims()[0];
        {
            let ad = a.data_mut();
            for b in 0..n {
                for i in fa..full {
                    ad[b * full + i] = 0.0;
                }
            }
        }
        let logits = self.heads[switch]
            .forward(&a, train)
            .map_err(SteppingError::Nn)?;
        self.last_switch = Some(switch);
        Ok(logits)
    }

    /// Back-propagates through the switch used by the last forward.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::ExecutorState`] before any forward.
    pub fn backward(&mut self, dlogits: &Tensor) -> Result<()> {
        let switch = self
            .last_switch
            .ok_or_else(|| SteppingError::ExecutorState("backward called before forward".into()))?;
        let f = self.switches[switch];
        let mut g = self.heads[switch]
            .backward(dlogits)
            .map_err(SteppingError::Nn)?;
        let fa = self.feature_width.active(f);
        let full = self.feature_width.full();
        let n = g.shape().dims()[0];
        {
            let gd = g.data_mut();
            for b in 0..n {
                for i in fa..full {
                    gd[b * full + i] = 0.0;
                }
            }
        }
        for s in self.stages.iter_mut().rev() {
            g = match s {
                SlimStage::Linear(l) => l.backward(&g)?,
                SlimStage::Conv(c) => c.backward(&g)?,
                SlimStage::BatchNorm(bns) => bns[switch].backward(&g).map_err(SteppingError::Nn)?,
                SlimStage::Relu(r) => r.backward(&g).map_err(SteppingError::Nn)?,
                SlimStage::MaxPool(p) => p.backward(&g).map_err(SteppingError::Nn)?,
                SlimStage::Flatten(fl) => fl.backward(&g).map_err(SteppingError::Nn)?,
            };
        }
        Ok(())
    }

    /// Parameters touched when training `switch`.
    ///
    /// # Errors
    ///
    /// Returns [`SteppingError::SubnetOutOfRange`].
    pub fn params_for(&mut self, switch: usize) -> Result<Vec<&mut Param>> {
        if switch >= self.switches.len() {
            return Err(SteppingError::SubnetOutOfRange {
                subnet: switch,
                count: self.switches.len(),
            });
        }
        let mut out = Vec::new();
        for s in &mut self.stages {
            match s {
                SlimStage::Linear(l) => {
                    out.push(&mut l.weight);
                    out.push(&mut l.bias);
                }
                SlimStage::Conv(c) => {
                    out.push(&mut c.weight);
                    out.push(&mut c.bias);
                }
                SlimStage::BatchNorm(bns) => out.extend(bns[switch].params_mut()),
                _ => {}
            }
        }
        out.extend(self.heads[switch].params_mut());
        Ok(out)
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        for s in &mut self.stages {
            match s {
                SlimStage::Linear(l) => {
                    l.weight.zero_grad();
                    l.bias.zero_grad();
                }
                SlimStage::Conv(c) => {
                    c.weight.zero_grad();
                    c.bias.zero_grad();
                }
                SlimStage::BatchNorm(bns) => {
                    for bn in bns {
                        for p in bn.params_mut() {
                            p.zero_grad();
                        }
                    }
                }
                _ => {}
            }
        }
        for h in &mut self.heads {
            for p in h.params_mut() {
                p.zero_grad();
            }
        }
    }

    /// Joint training: every switch takes one step per batch, smallest
    /// first (the slimmable training recipe). Returns mean loss per epoch
    /// per switch.
    ///
    /// # Errors
    ///
    /// Propagates training errors.
    pub fn train_joint(
        &mut self,
        data: &dyn Dataset,
        opts: &JointTrainOptions,
    ) -> Result<Vec<Vec<f32>>> {
        if opts.epochs == 0 || opts.batch_size == 0 {
            return Err(SteppingError::BadConfig(
                "epochs and batch size must be nonzero".into(),
            ));
        }
        let n = self.switch_count();
        let mut sgd = Sgd::new(opts.lr).map_err(SteppingError::Nn)?;
        let mut all = Vec::with_capacity(opts.epochs);
        for epoch in 0..opts.epochs {
            let mut sums = vec![0.0f32; n];
            let mut counts = vec![0usize; n];
            for batch in
                BatchIter::new(data, Split::Train, opts.batch_size, epoch as u64, opts.seed)
            {
                let (x, y) = batch?;
                for k in 0..n {
                    self.zero_grad();
                    let logits = self.forward(&x, k, true)?;
                    let (l, dl) = loss::cross_entropy(&logits, &y).map_err(SteppingError::Nn)?;
                    self.backward(&dl)?;
                    sgd.step(&mut self.params_for(k)?)
                        .map_err(SteppingError::Nn)?;
                    sums[k] += l;
                    counts[k] += 1;
                }
            }
            for (s, c) in sums.iter_mut().zip(counts.iter()) {
                *s /= (*c).max(1) as f32;
            }
            all.push(sums);
        }
        Ok(all)
    }

    /// Top-1 accuracy of `switch` on a split.
    ///
    /// # Errors
    ///
    /// Propagates forward errors; rejects empty splits.
    pub fn evaluate(
        &mut self,
        data: &dyn Dataset,
        split: Split,
        switch: usize,
        batch_size: usize,
    ) -> Result<f32> {
        if batch_size == 0 || data.is_empty(split) {
            return Err(SteppingError::BadConfig("bad evaluation config".into()));
        }
        let mut correct = 0.0f64;
        let mut total = 0usize;
        for batch in BatchIter::new(data, split, batch_size, 0, 0) {
            let (x, y) = batch?;
            let logits = self.forward(&x, switch, false)?;
            let acc = metrics::accuracy(&logits, &y).map_err(SteppingError::Nn)?;
            correct += acc as f64 * y.len() as f64;
            total += y.len();
        }
        Ok((correct / total as f64) as f32)
    }
}

fn mat_to_nchw(mat: &Tensor, n: usize, c: usize, oh: usize, ow: usize) -> Tensor {
    let positions = oh * ow;
    let mut out = Tensor::zeros(Shape::of(&[n, c, oh, ow]));
    let src = mat.data();
    let dst = out.data_mut();
    for b in 0..n {
        for p in 0..positions {
            for ch in 0..c {
                dst[(b * c + ch) * positions + p] = src[(b * positions + p) * c + ch];
            }
        }
    }
    out
}

fn nchw_to_mat(t: &Tensor, n: usize, c: usize, oh: usize, ow: usize) -> Tensor {
    let positions = oh * ow;
    let mut out = Tensor::zeros(Shape::of(&[n * positions, c]));
    let src = t.data();
    let dst = out.data_mut();
    for b in 0..n {
        for p in 0..positions {
            for ch in 0..c {
                dst[(b * positions + p) * c + ch] = src[(b * c + ch) * positions + p];
            }
        }
    }
    out
}

/// Where the slimmable builder currently is, shape-wise.
#[derive(Debug, Clone, Copy)]
enum BShape {
    Image(usize, usize, usize, bool), // c, h, w, produced-by-slim-layer
    Flat(InWidth),
}

/// Fluent builder for [`Slimmable`] networks.
///
/// # Example
///
/// ```
/// use stepping_baselines::SlimmableBuilder;
/// use stepping_tensor::Shape;
///
/// let slim = SlimmableBuilder::new(Shape::of(&[3, 8, 8]), vec![0.25, 0.5, 1.0], 0)
///     .conv(8, 3, 1, 1)
///     .batch_norm()
///     .relu()
///     .max_pool(2, 2)
///     .flatten()
///     .linear(16)
///     .relu()
///     .build(10)?;
/// assert_eq!(slim.switch_count(), 3);
/// # Ok::<(), stepping_core::SteppingError>(())
/// ```
#[derive(Debug)]
pub struct SlimmableBuilder {
    switches: Vec<f64>,
    rng: StdRng,
    stages: Vec<SlimStage>,
    shape: BShape,
    input_shape: Shape,
    error: Option<SteppingError>,
}

impl SlimmableBuilder {
    /// Starts a builder for `input_shape` with the given ascending width
    /// `switches`.
    ///
    /// An input shape that is not rank 1 or 3 is reported as
    /// [`SteppingError::BadConfig`] by [`build`](SlimmableBuilder::build)
    /// rather than panicking here.
    ///
    /// # Panics
    ///
    /// Panics for an empty/non-ascending switch list.
    pub fn new(input_shape: Shape, switches: Vec<f64>, seed: u64) -> Self {
        assert!(!switches.is_empty(), "at least one switch required");
        assert!(
            switches.windows(2).all(|w| w[0] < w[1])
                && switches.iter().all(|f| *f > 0.0 && *f <= 1.0),
            "switches must be ascending within (0, 1]"
        );
        let mut error = None;
        let shape = match input_shape.dims() {
            [c, h, w] => BShape::Image(*c, *h, *w, false),
            [f] => BShape::Flat(InWidth::Fixed(*f)),
            _ => {
                error = Some(SteppingError::BadConfig(format!(
                    "input shape must be [c, h, w] or [features], got {input_shape}"
                )));
                BShape::Flat(InWidth::Fixed(0))
            }
        };
        SlimmableBuilder {
            switches,
            rng: init::rng(seed),
            stages: Vec::new(),
            shape,
            input_shape,
            error,
        }
    }

    fn fail(&mut self, msg: String) {
        if self.error.is_none() {
            self.error = Some(SteppingError::BadConfig(msg));
        }
    }

    /// Adds a slimmable convolution.
    pub fn conv(mut self, out: usize, kernel: usize, stride: usize, padding: usize) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.shape {
            BShape::Image(c, h, w, slim_in) => {
                match ConvGeometry::new(c, h, w, kernel, kernel, stride, padding) {
                    Ok(geom) => {
                        let in_width = if slim_in {
                            InWidth::Frac { full: c }
                        } else {
                            InWidth::Fixed(c)
                        };
                        self.stages.push(SlimStage::Conv(SlimConv::new(
                            in_width,
                            out,
                            kernel,
                            stride,
                            padding,
                            geom.positions(),
                            &mut self.rng,
                        )));
                        self.shape = BShape::Image(out, geom.out_h, geom.out_w, true);
                    }
                    Err(e) => self.fail(format!("conv geometry: {e}")),
                }
            }
            BShape::Flat(_) => self.fail("conv after flatten".into()),
        }
        self
    }

    /// Adds a slimmable fully-connected layer.
    pub fn linear(mut self, out: usize) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.shape {
            BShape::Flat(in_width) => {
                self.stages.push(SlimStage::Linear(SlimLinear::new(
                    in_width,
                    out,
                    &mut self.rng,
                )));
                self.shape = BShape::Flat(InWidth::Frac { full: out });
            }
            BShape::Image(..) => self.fail("linear before flatten".into()),
        }
        self
    }

    /// Adds switchable batch normalisation (one instance per switch).
    pub fn batch_norm(mut self) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.shape {
            BShape::Image(c, ..) => {
                let bns = (0..self.switches.len())
                    .map(|_| BatchNorm2d::new(c))
                    .collect();
                self.stages.push(SlimStage::BatchNorm(bns));
            }
            BShape::Flat(_) => {
                self.fail("switchable batch norm is only supported on images".into())
            }
        }
        self
    }

    /// Adds ReLU.
    pub fn relu(mut self) -> Self {
        if self.error.is_none() {
            self.stages.push(SlimStage::Relu(Relu::new()));
        }
        self
    }

    /// Adds max pooling.
    pub fn max_pool(mut self, kernel: usize, stride: usize) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.shape {
            BShape::Image(c, h, w, slim_in) => {
                match ConvGeometry::new(c, h, w, kernel, kernel, stride, 0) {
                    Ok(geom) => {
                        self.stages
                            .push(SlimStage::MaxPool(MaxPool2d::new(kernel, stride)));
                        self.shape = BShape::Image(c, geom.out_h, geom.out_w, slim_in);
                    }
                    Err(e) => self.fail(format!("max pool geometry: {e}")),
                }
            }
            BShape::Flat(_) => self.fail("max pool after flatten".into()),
        }
        self
    }

    /// Flattens the image pipeline.
    pub fn flatten(mut self) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.shape {
            BShape::Image(c, h, w, slim_in) => {
                self.stages.push(SlimStage::Flatten(Flatten::new()));
                self.shape = BShape::Flat(if slim_in {
                    InWidth::FracChannels {
                        channels: c,
                        hw: h * w,
                    }
                } else {
                    InWidth::Fixed(c * h * w)
                });
            }
            BShape::Flat(_) => self.fail("flatten on an already-flat pipeline".into()),
        }
        self
    }

    /// Finalises the network with one head per switch.
    ///
    /// # Errors
    ///
    /// Returns the first recorded configuration error, or
    /// [`SteppingError::BadConfig`] when the pipeline does not end flat.
    pub fn build(mut self, classes: usize) -> Result<Slimmable> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if classes == 0 {
            return Err(SteppingError::BadConfig("classes must be nonzero".into()));
        }
        let feature_width = match self.shape {
            BShape::Flat(w) => w,
            BShape::Image(..) => {
                return Err(SteppingError::BadConfig("pipeline must end flat".into()))
            }
        };
        let heads = (0..self.switches.len())
            .map(|_| Linear::new(feature_width.full(), classes, &mut self.rng))
            .collect();
        Ok(Slimmable {
            stages: self.stages,
            heads,
            switches: self.switches,
            classes,
            input_shape: self.input_shape,
            feature_width,
            last_switch: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepping_data::{
        GaussianBlobs, GaussianBlobsConfig, SyntheticImages, SyntheticImagesConfig,
    };

    fn slim_mlp() -> Slimmable {
        SlimmableBuilder::new(Shape::of(&[10]), vec![0.25, 0.5, 1.0], 3)
            .linear(16)
            .relu()
            .linear(12)
            .relu()
            .build(4)
            .unwrap()
    }

    fn slim_cnn() -> Slimmable {
        SlimmableBuilder::new(Shape::of(&[2, 8, 8]), vec![0.5, 1.0], 4)
            .conv(6, 3, 1, 1)
            .batch_norm()
            .relu()
            .max_pool(2, 2)
            .flatten()
            .linear(10)
            .relu()
            .build(3)
            .unwrap()
    }

    #[test]
    fn forward_shapes_and_macs_monotone() {
        let mut s = slim_mlp();
        let x = init::uniform(Shape::of(&[2, 10]), -1.0, 1.0, &mut init::rng(1));
        for k in 0..3 {
            let y = s.forward(&x, k, false).unwrap();
            assert_eq!(y.shape().dims(), &[2, 4]);
        }
        assert!(s.macs(0).unwrap() < s.macs(1).unwrap());
        assert!(s.macs(1).unwrap() < s.macs(2).unwrap());
        assert!(s.macs(3).is_err());
    }

    #[test]
    fn small_switch_values_change_when_width_grows() {
        // The defining slimmable behaviour: unlike SteppingNet, a shared
        // neuron's value DIFFERS between switches (inputs differ).
        let mut s = slim_mlp();
        let x = init::uniform(Shape::of(&[1, 10]), -1.0, 1.0, &mut init::rng(2));
        // peek at the first layer's output under two switches
        let f_small = s.switches[0];
        let f_large = s.switches[2];
        // drive layer 0 (+ relu) then layer 2 at each width; layer 0 reads
        // the raw input (always fully active), so the effect shows at layer 2
        let run = |s: &mut Slimmable, f: f64| -> f32 {
            let h0 = match &mut s.stages[0] {
                SlimStage::Linear(l) => l.forward(&x, f).unwrap(),
                _ => unreachable!(),
            };
            let h0 = h0.map(|v| v.max(0.0));
            match &mut s.stages[2] {
                SlimStage::Linear(l) => l.forward(&h0, f).unwrap().data()[0],
                _ => unreachable!(),
            }
        };
        let a = run(&mut s, f_small);
        let b = run(&mut s, f_large);
        // neuron 0 of layer 2 is active in both switches but reads more
        // hidden inputs at the larger width — its value changes
        // (recomputation required)
        assert_ne!(a, b);
    }

    #[test]
    fn cnn_forward_backward_and_training() {
        let data = SyntheticImages::new(
            SyntheticImagesConfig {
                classes: 3,
                channels: 2,
                height: 8,
                width: 8,
                train_per_class: 6,
                test_per_class: 2,
                ..Default::default()
            },
            5,
        )
        .unwrap();
        let mut s = slim_cnn();
        let losses = s
            .train_joint(
                &data,
                &JointTrainOptions {
                    epochs: 2,
                    batch_size: 6,
                    lr: 0.05,
                    seed: 0,
                },
            )
            .unwrap();
        assert_eq!(losses.len(), 2);
        let acc = s.evaluate(&data, Split::Test, 1, 4).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn fit_switches_meets_targets() {
        let mut s = slim_mlp();
        let full = s.macs(2).unwrap();
        let targets = vec![full / 6, full / 2, (full as f64 * 0.95) as u64];
        let fitted = s.fit_switches_to_macs(&targets).unwrap();
        assert_eq!(fitted.len(), 3);
        for (k, t) in targets.iter().enumerate() {
            assert!(s.macs(k).unwrap() <= *t);
        }
    }

    #[test]
    fn joint_training_reduces_loss_mlp() {
        let data = GaussianBlobs::new(
            GaussianBlobsConfig {
                classes: 4,
                features: 10,
                train_per_class: 25,
                test_per_class: 5,
                separation: 3.0,
                noise_std: 0.5,
            },
            9,
        )
        .unwrap();
        let mut s = slim_mlp();
        let losses = s
            .train_joint(
                &data,
                &JointTrainOptions {
                    epochs: 5,
                    lr: 0.1,
                    ..Default::default()
                },
            )
            .unwrap();
        let first: f32 = losses[0].iter().sum();
        let last: f32 = losses.last().unwrap().iter().sum();
        assert!(last < first);
    }

    #[test]
    fn set_switches_validates() {
        let mut s = slim_mlp();
        assert!(s.set_switches(vec![0.5, 0.25, 1.0]).is_err());
        assert!(s.set_switches(vec![0.5, 1.0]).is_err());
        assert!(s.set_switches(vec![0.2, 0.6, 1.0]).is_ok());
    }

    #[test]
    fn builder_rejects_bad_pipelines() {
        assert!(SlimmableBuilder::new(Shape::of(&[4]), vec![0.5, 1.0], 0)
            .conv(3, 3, 1, 1)
            .build(2)
            .is_err());
        assert!(
            SlimmableBuilder::new(Shape::of(&[2, 4, 4]), vec![0.5, 1.0], 0)
                .conv(3, 3, 1, 1)
                .build(2)
                .is_err()
        );
        assert!(SlimmableBuilder::new(Shape::of(&[4]), vec![1.0], 0)
            .linear(3)
            .build(0)
            .is_err());
    }

    #[test]
    fn bad_input_rank_is_a_typed_error_not_a_panic() {
        let err = SlimmableBuilder::new(Shape::of(&[2, 3, 4, 5]), vec![0.5, 1.0], 0)
            .linear(4)
            .build(2)
            .unwrap_err();
        assert!(matches!(err, SteppingError::BadConfig(_)), "{err:?}");
    }
}
