//! # stepping-baselines
//!
//! The two state-of-the-art baselines SteppingNet is compared against in the
//! paper's Fig. 6, implemented from scratch:
//!
//! * [`any_width`] — the **any-width network** \[Vu et al., CVPR 2020\]:
//!   subnets follow a *regular* width pattern (neuron `i` of every layer
//!   belongs to the subnet of its index class, Fig. 1(b) of the paper). The
//!   triangular connectivity rule is exactly the SteppingNet legality rule,
//!   so any-width instances are [`stepping_core::SteppingNet`]s with
//!   index-ordered assignments and **no** importance-driven construction —
//!   which is precisely the restriction the paper criticises.
//! * [`slimmable`] — the **slimmable network** \[Yu et al., ICLR 2019\]:
//!   each switch uses the first `w·width` neurons of every layer with
//!   *full* connectivity inside the switch and **switchable batch norm**.
//!   Larger switches invalidate smaller-switch activations (the synapse
//!   `3→5` example of the paper's Fig. 1(a)), so switching requires
//!   recomputation from scratch — the executor here charges those MACs
//!   honestly.
//!
//! Both baselines expose MAC-accounted inference so the Fig. 6 comparison
//! ("accuracy at equal MAC budget") is apples-to-apples.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod any_width;
pub mod slimmable;

pub use any_width::{fit_widths_to_macs, regular_assign, train_joint, JointTrainOptions};
pub use slimmable::{Slimmable, SlimmableBuilder};
