//! Per-replica health tracking: a sliding-window circuit breaker.
//!
//! The router records one outcome per routing attempt — success, or an
//! admission refusal / shutdown error — into a bounded window. When the
//! window is full and the failure ratio reaches the configured trip
//! ratio, the breaker opens: the replica stops receiving *new* sessions
//! (sticky upgrades of its existing sessions still flow — their caches
//! live there and nowhere else). After a fixed number of skipped routing
//! decisions the breaker goes half-open and admits a single probe; a
//! successful probe closes it and clears the window, a failed probe
//! re-opens it for another full cooldown.
//!
//! The cooldown is counted in routing decisions, not wall-clock time, so
//! breaker behaviour is a pure function of the observed outcome sequence —
//! reproducible in tests and across restarts, like everything else in this
//! crate.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// Observable state of a [`Breaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: new sessions route here.
    Closed,
    /// Tripped: skipped for new sessions until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe session is allowed through.
    HalfOpen,
}

#[derive(Debug)]
struct Inner {
    /// Last `window` outcomes, `true` = failure.
    outcomes: VecDeque<bool>,
    failures: usize,
    state: BreakerState,
    /// Routing decisions left to skip while [`BreakerState::Open`].
    cooldown_left: u32,
    /// A half-open probe is in flight (admitted but not yet recorded).
    probing: bool,
}

/// Sliding-window circuit breaker guarding one replica.
#[derive(Debug)]
pub struct Breaker {
    window: usize,
    /// Failures within a full window that trip the breaker.
    trip_at: usize,
    cooldown: u32,
    inner: Mutex<Inner>,
}

impl Breaker {
    /// A breaker tripping when, over the last `window` attempts (floored at
    /// 1), at least `trip_ratio` of them failed; once open it skips
    /// `cooldown` routing decisions before admitting a probe.
    pub fn new(window: usize, trip_ratio: f64, cooldown: u32) -> Self {
        let window = window.max(1);
        let ratio = trip_ratio.clamp(0.0, 1.0);
        Breaker {
            window,
            trip_at: ((window as f64 * ratio).ceil() as usize).max(1),
            cooldown,
            inner: Mutex::new(Inner {
                outcomes: VecDeque::with_capacity(window),
                failures: 0,
                state: BreakerState::Closed,
                cooldown_left: 0,
                probing: false,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Whether a *new* session may be routed to this replica right now.
    /// Counts down the open-state cooldown; in half-open state admits only
    /// one probe at a time.
    pub fn allow(&self) -> bool {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                inner.cooldown_left = inner.cooldown_left.saturating_sub(1);
                if inner.cooldown_left == 0 {
                    inner.state = BreakerState::HalfOpen;
                    inner.probing = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if inner.probing {
                    false
                } else {
                    inner.probing = true;
                    true
                }
            }
        }
    }

    /// Records the outcome of one routing attempt (`failed` = admission
    /// refusal or shutdown error). Returns `true` when this very record
    /// tripped the breaker open — the caller's cue to bump the trip
    /// counter and emit the telemetry event exactly once per trip.
    pub fn record(&self, failed: bool) -> bool {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::HalfOpen => {
                inner.probing = false;
                if failed {
                    inner.state = BreakerState::Open;
                    inner.cooldown_left = self.cooldown;
                    true
                } else {
                    inner.state = BreakerState::Closed;
                    inner.outcomes.clear();
                    inner.failures = 0;
                    false
                }
            }
            BreakerState::Closed => {
                if inner.outcomes.len() == self.window && inner.outcomes.pop_front() == Some(true) {
                    inner.failures -= 1;
                }
                inner.outcomes.push_back(failed);
                if failed {
                    inner.failures += 1;
                }
                if inner.outcomes.len() == self.window && inner.failures >= self.trip_at {
                    inner.state = BreakerState::Open;
                    inner.cooldown_left = self.cooldown;
                    true
                } else {
                    false
                }
            }
            // already open: outcomes of in-flight attempts don't re-trip
            BreakerState::Open => false,
        }
    }

    /// Current state (for metrics, tests, and operator introspection).
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_only_on_full_window_at_ratio() {
        let b = Breaker::new(4, 0.5, 3);
        assert!(!b.record(true), "window not full yet");
        assert!(!b.record(true), "still filling");
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.record(false));
        assert!(b.record(false), "4th outcome fills the window at 2/4");
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn window_slides_old_failures_out() {
        let b = Breaker::new(4, 0.75, 3);
        for _ in 0..2 {
            b.record(true);
        }
        for _ in 0..8 {
            b.record(false);
        }
        assert_eq!(b.state(), BreakerState::Closed, "failures aged out");
    }

    #[test]
    fn cooldown_then_probe_then_close_or_reopen() {
        let b = Breaker::new(2, 0.5, 2);
        b.record(true);
        assert!(b.record(true), "tripped");
        // two routing decisions skipped while open
        assert!(!b.allow());
        assert!(b.allow(), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(), "only one probe in flight");
        // failed probe re-opens for a full cooldown
        assert!(b.record(true), "re-trip counts as a trip");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        assert!(b.allow());
        // successful probe closes and clears the window
        assert!(!b.record(false));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.record(true), "cleared window must refill before a trip");
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn closed_breaker_always_allows() {
        let b = Breaker::new(8, 1.0, 4);
        for _ in 0..100 {
            assert!(b.allow());
        }
    }
}
