//! The router's always-on production metric handles.
//!
//! Same layout discipline as `stepping-serve`'s metrics module: every
//! series lives in the process-wide
//! [`MetricsRegistry::global`](stepping_metrics::MetricsRegistry::global)
//! registry under a name from `stepping_core::events::metric`, is
//! registered once at [`Router::new`](crate::Router::new), and the hot
//! path only touches pre-resolved `Arc` handles.
//!
//! Series layout:
//!
//! * unlabeled counters — `router.route` (sessions placed on their ring
//!   owner), `router.reroute` (placed elsewhere: breaker open, drain, or
//!   admission refusal at the owner), `router.drain` (drains initiated),
//!   `router.breaker_trip` (health breakers tripped open);
//! * per replica — `router.replica_depth{replica="N"}` gauges tracking
//!   live sessions;
//! * `router.ring_imbalance` — a histogram fed, at every placement, with
//!   the chosen replica's ring share in permille of the ideal share
//!   (1000 = exactly fair); its mean drifting above ~1000 means hot
//!   replicas are absorbing more than their slice of new sessions.

use std::sync::Arc;

use stepping_core::events::metric;
use stepping_metrics::{Gauge, LogHistogram, MetricsRegistry, ShardedCounter};

/// All metric handles the router records into.
#[derive(Debug)]
pub(crate) struct RouterMetrics {
    /// Sessions placed on their ring-owner replica.
    pub route: Arc<ShardedCounter>,
    /// Sessions placed off their owner (failover or drain).
    pub reroute: Arc<ShardedCounter>,
    /// Replica drains initiated through the router.
    pub drain: Arc<ShardedCounter>,
    /// Health breakers tripped open.
    pub breaker_trip: Arc<ShardedCounter>,
    /// Live sessions per replica.
    pub replica_depth: Vec<Arc<Gauge>>,
    /// Chosen replica's ring share, permille of ideal, per placement.
    pub ring_imbalance: Arc<LogHistogram>,
}

impl RouterMetrics {
    /// Registers every router series for `replicas` replicas. Idempotent —
    /// re-registration returns the existing handles.
    pub fn new(registry: &MetricsRegistry, replicas: usize) -> Self {
        registry.set_validator(stepping_core::events::is_metric);
        RouterMetrics {
            route: registry.register_counter(metric::ROUTER_ROUTE),
            reroute: registry.register_counter(metric::ROUTER_REROUTE),
            drain: registry.register_counter(metric::ROUTER_DRAIN),
            breaker_trip: registry.register_counter(metric::ROUTER_BREAKER_TRIP),
            replica_depth: (0..replicas.max(1))
                .map(|r| {
                    registry.register_gauge_labeled(
                        metric::ROUTER_REPLICA_DEPTH,
                        "replica",
                        r.to_string(),
                    )
                })
                .collect(),
            ring_imbalance: registry.register_histogram(metric::ROUTER_RING_IMBALANCE),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_series_registers_cleanly() {
        let registry = MetricsRegistry::new();
        let m = RouterMetrics::new(&registry, 3);
        assert_eq!(registry.invalid_names(), 0, "all names in the registry");
        m.route.inc();
        m.replica_depth[2].set(5);
        m.ring_imbalance.record(1000);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("router.route"), Some(1));
        assert_eq!(snap.gauge("router.replica_depth{replica=\"2\"}"), Some(5));
        assert!(snap.hist("router.ring_imbalance").is_some());
    }
}
