//! Router configuration, built with [`RouterConfig::builder`] — the same
//! builder idiom as [`ServeConfig`](stepping_serve::ServeConfig).

/// Configuration of a [`Router`](crate::Router).
///
/// ```
/// use stepping_router::RouterConfig;
///
/// let config = RouterConfig::builder()
///     .replicas(4)
///     .vnodes(128)
///     .breaker_window(16)
///     .breaker_trip_ratio(0.25)
///     .breaker_cooldown(32)
///     .build();
/// assert_eq!(config.get_replicas(), 4);
/// ```
///
/// Defaults: 2 replicas, 64 vnodes per replica, breaker window 32, trip
/// ratio 0.5, cooldown 64 routing decisions.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    replicas: usize,
    vnodes: usize,
    breaker_window: usize,
    breaker_trip_ratio: f64,
    breaker_cooldown: u32,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            replicas: 2,
            vnodes: 64,
            breaker_window: 32,
            breaker_trip_ratio: 0.5,
            breaker_cooldown: 64,
        }
    }
}

/// Builder for [`RouterConfig`]; created by [`RouterConfig::builder`].
#[derive(Debug, Clone, Default)]
pub struct RouterConfigBuilder {
    config: RouterConfig,
}

impl RouterConfigBuilder {
    /// Number of serving replicas [`Router::launch`](crate::Router::launch)
    /// spins up (ignored by [`Router::new`](crate::Router::new), which
    /// takes the replicas it is handed). Floored at 1.
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.config.replicas = replicas.max(1);
        self
    }

    /// Virtual nodes per replica on the consistent-hash ring (floored at
    /// 1). More vnodes mean tighter balance and smoother drains at the
    /// cost of a larger (still tiny) sorted ring.
    pub fn vnodes(mut self, vnodes: usize) -> Self {
        self.config.vnodes = vnodes.max(1);
        self
    }

    /// Sliding-window length of each replica's health breaker (floored at
    /// 1): how many recent routing outcomes the trip decision looks at.
    pub fn breaker_window(mut self, window: usize) -> Self {
        self.config.breaker_window = window.max(1);
        self
    }

    /// Failure ratio over a full window that trips the breaker (clamped to
    /// `0.0..=1.0`).
    pub fn breaker_trip_ratio(mut self, ratio: f64) -> Self {
        self.config.breaker_trip_ratio = ratio.clamp(0.0, 1.0);
        self
    }

    /// Routing decisions a tripped replica is skipped for before one probe
    /// session is let through (half-open).
    pub fn breaker_cooldown(mut self, cooldown: u32) -> Self {
        self.config.breaker_cooldown = cooldown;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> RouterConfig {
        self.config
    }
}

impl RouterConfig {
    /// Starts a builder with the defaults above.
    pub fn builder() -> RouterConfigBuilder {
        RouterConfigBuilder::default()
    }

    /// Configured replica count (used by `Router::launch`).
    pub fn get_replicas(&self) -> usize {
        self.replicas
    }

    /// Configured vnodes per replica.
    pub fn get_vnodes(&self) -> usize {
        self.vnodes
    }

    /// Configured breaker window.
    pub fn get_breaker_window(&self) -> usize {
        self.breaker_window
    }

    /// Configured breaker trip ratio.
    pub fn get_breaker_trip_ratio(&self) -> f64 {
        self.breaker_trip_ratio
    }

    /// Configured breaker cooldown, in routing decisions.
    pub fn get_breaker_cooldown(&self) -> u32 {
        self.breaker_cooldown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_reaches_every_knob_and_floors() {
        let built = RouterConfig::builder()
            .replicas(0)
            .vnodes(0)
            .breaker_window(0)
            .breaker_trip_ratio(7.0)
            .breaker_cooldown(5)
            .build();
        assert_eq!(built.get_replicas(), 1);
        assert_eq!(built.get_vnodes(), 1);
        assert_eq!(built.get_breaker_window(), 1);
        assert_eq!(built.get_breaker_trip_ratio(), 1.0);
        assert_eq!(built.get_breaker_cooldown(), 5);

        let defaults = RouterConfig::builder().build();
        assert_eq!(defaults.get_replicas(), 2);
        assert_eq!(defaults.get_vnodes(), 64);
        assert_eq!(defaults.get_breaker_window(), 32);
        assert_eq!(defaults.get_breaker_trip_ratio(), 0.5);
        assert_eq!(defaults.get_breaker_cooldown(), 64);
    }
}
