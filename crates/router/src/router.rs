//! The front door: consistent-hash session routing over replica handles.

use std::sync::Arc;

use stepping_core::telemetry::{self, Value};
use stepping_core::{events::event, Result, SteppingError, SteppingNet};
use stepping_metrics::MetricsRegistry;
use stepping_serve::{
    AdmissionError, ReplicaHandle, Request, Response, ServeConfig, ServeError, Server, ServerStats,
    Ticket,
};

use crate::config::RouterConfig;
use crate::health::{Breaker, BreakerState};
use crate::metrics::RouterMetrics;
use crate::ring::Ring;

/// Bits of a routed session id reserved for the replica-local session.
///
/// A routed session id is `(replica_index << REPLICA_SHIFT) | local_id`:
/// the replica that owns a session's activation cache is *encoded in the
/// handle itself*, so an [`upgrade`](Router::upgrade) structurally cannot
/// land on the wrong replica. Replica-local ids are assigned sequentially
/// by each server; 48 bits last decades at a million sessions per second.
pub const REPLICA_SHIFT: u32 = 48;

const LOCAL_MASK: u64 = (1 << REPLICA_SHIFT) - 1;

/// Packs a replica index and a replica-local session id into one routed
/// session id. Inverse of [`decode_session`].
pub fn encode_session(replica: usize, local: u64) -> u64 {
    ((replica as u64) << REPLICA_SHIFT) | (local & LOCAL_MASK)
}

/// Splits a routed session id into `(replica_index, local_session_id)`.
pub fn decode_session(session: u64) -> (usize, u64) {
    ((session >> REPLICA_SHIFT) as usize, session & LOCAL_MASK)
}

/// A pending routed response: wraps the replica's
/// [`Ticket`](stepping_serve::Ticket) and rewrites the response's session
/// handle into routed form, so callers only ever see ids they can hand
/// back to [`Router::upgrade`] / [`Router::release`].
#[derive(Debug)]
pub struct RoutedTicket {
    ticket: Ticket,
    replica: usize,
}

impl RoutedTicket {
    /// Index of the replica serving this request.
    pub fn replica(&self) -> usize {
        self.replica
    }

    fn reencode(replica: usize, result: Result<Response>) -> Result<Response> {
        result.map(|mut response| {
            response.session = encode_session(replica, response.session);
            response
        })
    }

    /// Blocks until the replica answers; see
    /// [`Ticket::wait`](stepping_serve::Ticket::wait).
    pub fn wait(self) -> Result<Response> {
        Self::reencode(self.replica, self.ticket.wait())
    }

    /// Non-blocking poll; see
    /// [`Ticket::try_wait`](stepping_serve::Ticket::try_wait).
    pub fn try_wait(&self) -> Option<Result<Response>> {
        self.ticket
            .try_wait()
            .map(|result| Self::reencode(self.replica, result))
    }

    /// Bounded blocking wait; see
    /// [`Ticket::wait_timeout`](stepping_serve::Ticket::wait_timeout).
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> Option<Result<Response>> {
        self.ticket
            .wait_timeout(timeout)
            .map(|result| Self::reencode(self.replica, result))
    }
}

/// A sharding front door over N independent serving replicas.
///
/// New sessions are placed by consistent-hashing their routing key onto
/// the replica [`Ring`]; upgrades and releases decode the replica straight
/// out of the routed session id (stickiness by construction). Per-replica
/// [`Breaker`]s trip on admission-refusal/shutdown error rates and steer
/// *new* sessions away from unhealthy replicas; [`drain`](Router::drain)
/// does the same deliberately, letting a replica bleed down to zero
/// sessions before [`shutdown`](Router::shutdown).
#[derive(Debug)]
pub struct Router {
    replicas: Vec<Arc<dyn ReplicaHandle>>,
    ring: Ring,
    health: Vec<Breaker>,
    /// Each replica's ring share in permille of the ideal share.
    share_permille: Vec<u64>,
    metrics: RouterMetrics,
}

impl Router {
    /// Wraps already-running replicas in a router. The `replicas` knob of
    /// `config` is ignored — the handed-in vector decides.
    ///
    /// # Errors
    ///
    /// [`SteppingError::BadConfig`] for an empty replica vector or more
    /// than 2^16 replicas (the routed-session encoding reserves 16 bits).
    pub fn new(replicas: Vec<Arc<dyn ReplicaHandle>>, config: &RouterConfig) -> Result<Router> {
        if replicas.is_empty() {
            return Err(SteppingError::BadConfig(
                "router needs at least one replica".into(),
            ));
        }
        if replicas.len() > 1 << (64 - REPLICA_SHIFT) {
            return Err(SteppingError::BadConfig(format!(
                "{} replicas exceed the {}-bit replica index",
                replicas.len(),
                64 - REPLICA_SHIFT
            )));
        }
        let ring = Ring::new(replicas.len(), config.get_vnodes());
        let ideal = 1.0 / replicas.len() as f64;
        let share_permille = ring
            .shares()
            .into_iter()
            .map(|share| (share / ideal * 1000.0).round() as u64)
            .collect();
        let health = (0..replicas.len())
            .map(|_| {
                Breaker::new(
                    config.get_breaker_window(),
                    config.get_breaker_trip_ratio(),
                    config.get_breaker_cooldown(),
                )
            })
            .collect();
        let metrics = RouterMetrics::new(&MetricsRegistry::global(), replicas.len());
        Ok(Router {
            replicas,
            ring,
            health,
            share_permille,
            metrics,
        })
    }

    /// Builds [`config.get_replicas()`](RouterConfig::get_replicas)
    /// independent [`Server`]s over `net` (each with its own worker pool
    /// and session table) and routes across them.
    ///
    /// # Errors
    ///
    /// Whatever [`Server::new`] reports for the given `serve` config.
    pub fn launch(net: &SteppingNet, serve: &ServeConfig, config: &RouterConfig) -> Result<Router> {
        let replicas = (0..config.get_replicas())
            .map(|_| {
                Server::new(net, serve.clone())
                    .map(|server| Arc::new(server) as Arc<dyn ReplicaHandle>)
            })
            .collect::<Result<Vec<_>>>()?;
        Router::new(replicas, config)
    }

    /// Number of replicas behind this router.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The consistent-hash ring (for introspection and tests).
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The replica that owns `key` on the ring — where a healthy,
    /// undrained fleet places a new session with that key.
    pub fn owner_of(&self, key: u64) -> usize {
        self.ring.owner(key)
    }

    /// Health-breaker state of one replica.
    pub fn breaker_state(&self, replica: usize) -> Option<BreakerState> {
        self.health.get(replica).map(Breaker::state)
    }

    /// Live session count of every replica.
    pub fn session_counts(&self) -> Vec<usize> {
        self.replicas.iter().map(|r| r.session_count()).collect()
    }

    /// Serving statistics of one replica.
    pub fn stats(&self, replica: usize) -> Option<ServerStats> {
        self.replicas.get(replica).map(|r| r.stats())
    }

    /// Routes a **new** session keyed by `key` (a client identity — the
    /// same key always hashes to the same owner). The owner replica is
    /// tried first; on drain, an open breaker, or an admission refusal the
    /// request fails over along the ring (`router.reroute`), so a sick
    /// replica sheds *new* traffic while its existing sessions stay put.
    ///
    /// # Errors
    ///
    /// The last replica's [`ServeError::Admission`] when every candidate
    /// refused, [`AdmissionError::Draining`] when every candidate was
    /// skipped (all draining or breaker-open), or the first
    /// [`ServeError::Invalid`] — a malformed request fails identically
    /// everywhere, so it is not retried.
    pub fn submit(
        &self,
        key: u64,
        request: Request,
    ) -> std::result::Result<RoutedTicket, ServeError> {
        let order = self.ring.successors(key);
        let mut refused: Option<ServeError> = None;
        for (hop, &replica) in order.iter().enumerate() {
            let handle = &self.replicas[replica];
            if handle.is_draining() || !self.health[replica].allow() {
                continue;
            }
            match handle.submit(request.clone()) {
                Ok(ticket) => {
                    self.health[replica].record(false);
                    if hop == 0 {
                        self.metrics.route.inc();
                    } else {
                        self.metrics.reroute.inc();
                        telemetry::point(
                            "serving",
                            event::ROUTER_REROUTE,
                            &[
                                ("key", Value::U64(key)),
                                ("owner", Value::U64(order[0] as u64)),
                                ("replica", Value::U64(replica as u64)),
                            ],
                        );
                    }
                    self.metrics
                        .ring_imbalance
                        .record(self.share_permille[replica]);
                    self.metrics.replica_depth[replica].set(handle.session_count() as i64);
                    return Ok(RoutedTicket { ticket, replica });
                }
                Err(ServeError::Admission(reason)) => {
                    if self.health[replica].record(true) {
                        self.metrics.breaker_trip.inc();
                        telemetry::point(
                            "serving",
                            event::ROUTER_BREAKER_TRIP,
                            &[("replica", Value::U64(replica as u64))],
                        );
                    }
                    refused = Some(ServeError::Admission(reason));
                }
                Err(invalid) => return Err(invalid),
            }
        }
        Err(refused.unwrap_or(ServeError::Admission(AdmissionError::Draining)))
    }

    /// Upgrades a routed session — **always** on the replica encoded in
    /// its id, where its activation cache lives. Never rerouted: a
    /// draining or breaker-open replica still serves its own upgrades.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] for a session id whose replica index does
    /// not exist, plus whatever the replica reports.
    pub fn upgrade(
        &self,
        session: u64,
        extra_budget_us: Option<f64>,
    ) -> std::result::Result<RoutedTicket, ServeError> {
        let (replica, local) = decode_session(session);
        let handle = self.replicas.get(replica).ok_or_else(|| {
            ServeError::Invalid(SteppingError::BadConfig(format!(
                "session {session:#x} names unknown replica {replica}"
            )))
        })?;
        let ticket = handle.upgrade(local, extra_budget_us)?;
        Ok(RoutedTicket { ticket, replica })
    }

    /// Releases a routed session on its owning replica. Unknown replica
    /// indices and unknown sessions are ignored, like
    /// [`Server::release`].
    pub fn release(&self, session: u64) {
        let (replica, local) = decode_session(session);
        if let Some(handle) = self.replicas.get(replica) {
            handle.release(local);
            self.metrics.replica_depth[replica].set(handle.session_count() as i64);
        }
    }

    /// Starts draining one replica: it refuses *new* sessions (the ring
    /// fails them over to the other replicas) while continuing to serve
    /// queued work and upgrades of its existing sessions. Poll
    /// [`drained`](Router::drained) for the moment it can be shut down or
    /// removed from the fleet.
    ///
    /// # Errors
    ///
    /// [`SteppingError::BadConfig`] for an out-of-range replica index.
    pub fn drain(&self, replica: usize) -> Result<()> {
        let handle = self
            .replicas
            .get(replica)
            .ok_or_else(|| SteppingError::BadConfig(format!("unknown replica {replica}")))?;
        handle.drain();
        self.metrics.drain.inc();
        telemetry::point(
            "serving",
            event::ROUTER_DRAIN,
            &[
                ("replica", Value::U64(replica as u64)),
                ("sessions", Value::U64(handle.session_count() as u64)),
            ],
        );
        Ok(())
    }

    /// Whether a draining replica has bled down to zero live sessions.
    pub fn drained(&self, replica: usize) -> bool {
        self.replicas
            .get(replica)
            .is_some_and(|r| r.is_draining() && r.session_count() == 0)
    }

    /// Gracefully shuts down every replica (queued requests are served).
    pub fn shutdown(&self) {
        for replica in &self.replicas {
            replica.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_encoding_round_trips() {
        for replica in [0usize, 1, 7, 65_535] {
            for local in [0u64, 1, 42, LOCAL_MASK] {
                let (r, l) = decode_session(encode_session(replica, local));
                assert_eq!((r, l), (replica, local));
            }
        }
    }

    #[test]
    fn replica_vector_is_validated() {
        let config = RouterConfig::builder().build();
        assert!(Router::new(Vec::new(), &config).is_err());
    }
}
