//! # stepping-router
//!
//! A scale-out front door for the SteppingNet serving engine: shards
//! sessions across N independent [`stepping_serve::Server`] replicas.
//!
//! * **Consistent-hash placement** — new sessions are keyed by a client
//!   identity and placed on a hand-rolled [`Ring`] with virtual nodes;
//!   the mapping is a pure function of `(replica_count, vnodes, key)`, so
//!   lookups are identical across restarts and machines.
//! * **Stickiness by construction** — a routed session id encodes its
//!   replica in the top bits ([`REPLICA_SHIFT`]); [`Router::upgrade`]
//!   decodes the replica straight out of the handle, so an incremental
//!   upgrade *cannot* land away from the activation cache it reuses. The
//!   paper's incremental-accuracy property survives scale-out untouched.
//! * **Health-aware failover** — per-replica sliding-window [`Breaker`]s
//!   trip on admission-refusal/shutdown error rates; tripped replicas are
//!   skipped for new sessions (which fail over along the ring) and probed
//!   half-open after a cooldown, while their existing sessions keep
//!   upgrading in place.
//! * **Graceful drain** — [`Router::drain`] flips one replica to
//!   refusing new sessions ([`AdmissionError::Draining`]
//!   (stepping_serve::AdmissionError::Draining)); the ring scatters its
//!   fresh traffic across the survivors, old sessions bleed off as they
//!   complete and release, and [`Router::drained`] reports when the
//!   replica is empty and safe to shut down.
//! * **Telemetry** — `router.route` / `router.reroute` / `router.drain` /
//!   `router.breaker_trip` counters, per-replica depth gauges, and a
//!   ring-imbalance histogram, all registered in the global
//!   [`MetricsRegistry`](stepping_metrics::MetricsRegistry) under names
//!   from `stepping_core::events`.
//!
//! See `docs/SERVING.md` ("Scaling out") for the ring diagram, the
//! stickiness rule, and the drain/failover policy.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod health;
mod metrics;
mod ring;
mod router;

pub use config::{RouterConfig, RouterConfigBuilder};
pub use health::{Breaker, BreakerState};
pub use ring::Ring;
pub use router::{decode_session, encode_session, RoutedTicket, Router, REPLICA_SHIFT};
