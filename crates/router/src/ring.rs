//! A hand-rolled consistent-hash ring with virtual nodes.
//!
//! Each replica owns [`vnodes`](Ring::vnodes) points on a 64-bit hash
//! circle; a session key is hashed onto the circle and owned by the first
//! point at or after it (wrapping). Virtual nodes smooth out the share
//! each replica owns — with one point per replica the largest arc is
//! routinely several times the ideal share, with 64 points per replica it
//! is within a few tens of percent — and they make *drain* cheap: when a
//! replica stops taking new sessions its keys scatter across all other
//! replicas (each key falls through to its own next point) instead of
//! dog-piling onto one neighbor.
//!
//! Everything here is a pure function of `(replica_count, vnodes, key)`:
//! point positions come from a [splitmix64](mix64)-style finalizer over the
//! `(replica, vnode)` pair and keys are run through the same finalizer, so
//! ring lookups are identical across processes, machines, and restarts —
//! the property that lets a restarted router keep routing upgrades of
//! sessions placed by its predecessor.

/// The splitmix64 output finalizer: an invertible avalanche over `u64`.
///
/// Pure and dependency-free — the determinism of the whole ring reduces to
/// the determinism of this function.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Position of one virtual node: replica `r`'s vnode `v` lands at a point
/// derived only from `(r, v)`.
fn point_hash(replica: usize, vnode: usize) -> u64 {
    mix64(((replica as u64) << 32) | vnode as u64)
}

/// One virtual node on the circle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Point {
    hash: u64,
    replica: usize,
}

/// The consistent-hash ring: `replicas × vnodes` points sorted around a
/// 64-bit circle.
#[derive(Debug, Clone)]
pub struct Ring {
    points: Vec<Point>,
    replicas: usize,
    vnodes: usize,
}

impl Ring {
    /// Builds the ring for `replicas` replicas with `vnodes` virtual nodes
    /// each (both floored at 1). Two rings built with the same arguments
    /// are identical — in any process, on any machine.
    pub fn new(replicas: usize, vnodes: usize) -> Self {
        let replicas = replicas.max(1);
        let vnodes = vnodes.max(1);
        let mut points: Vec<Point> = (0..replicas)
            .flat_map(|r| {
                (0..vnodes).map(move |v| Point {
                    hash: point_hash(r, v),
                    replica: r,
                })
            })
            .collect();
        // ties broken by replica index so the order is total and stable
        points.sort_by_key(|p| (p.hash, p.replica));
        Ring {
            points,
            replicas,
            vnodes,
        }
    }

    /// Number of replicas on the ring.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Virtual nodes per replica.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Index (into `self.points`) of the point owning `key`: the first
    /// point at or after `mix64(key)`, wrapping past the top of the circle.
    fn owner_point(&self, key: u64) -> usize {
        let h = mix64(key);
        match self.points.partition_point(|p| p.hash < h) {
            i if i == self.points.len() => 0,
            i => i,
        }
    }

    /// The replica owning `key`.
    pub fn owner(&self, key: u64) -> usize {
        self.points[self.owner_point(key)].replica
    }

    /// Every replica in failover order for `key`: the owner first, then
    /// each further replica in the order its first point appears walking
    /// the circle clockwise from the key. Always returns all `replicas`
    /// distinct indices — the caller filters out unhealthy ones.
    pub fn successors(&self, key: u64) -> Vec<usize> {
        let start = self.owner_point(key);
        let mut seen = vec![false; self.replicas];
        let mut order = Vec::with_capacity(self.replicas);
        for offset in 0..self.points.len() {
            let replica = self.points[(start + offset) % self.points.len()].replica;
            if !seen[replica] {
                seen[replica] = true;
                order.push(replica);
                if order.len() == self.replicas {
                    break;
                }
            }
        }
        order
    }

    /// Fraction of the hash circle each replica owns (sums to 1.0).
    pub fn shares(&self) -> Vec<f64> {
        let mut arcs = vec![0u128; self.replicas];
        for (i, p) in self.points.iter().enumerate() {
            let prev = if i == 0 {
                self.points[self.points.len() - 1].hash
            } else {
                self.points[i - 1].hash
            };
            // arc reaching *backwards* from p belongs to p's replica
            arcs[p.replica] += u128::from(p.hash.wrapping_sub(prev));
        }
        // a single point owns the whole circle (wrapping_sub gave 0)
        if self.points.len() == 1 {
            arcs[self.points[0].replica] = 1u128 << 64;
        }
        arcs.iter()
            .map(|&a| a as f64 / (1u128 << 64) as f64)
            .collect()
    }

    /// Largest replica share relative to the ideal `1/replicas` share:
    /// `1.0` is a perfectly balanced ring, `2.0` means the hottest replica
    /// owns twice its fair slice of the key space.
    pub fn imbalance(&self) -> f64 {
        let max = self.shares().into_iter().fold(0.0f64, f64::max);
        max * self.replicas as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_are_deterministic_across_rebuilds() {
        let a = Ring::new(5, 64);
        let b = Ring::new(5, 64);
        for key in (0..10_000u64).map(|k| k.wrapping_mul(0x2545_f491_4f6c_dd1d)) {
            assert_eq!(a.owner(key), b.owner(key));
            assert_eq!(a.successors(key), b.successors(key));
        }
    }

    #[test]
    fn successors_cover_every_replica_starting_at_owner() {
        let ring = Ring::new(7, 16);
        for key in 0..500u64 {
            let order = ring.successors(key);
            assert_eq!(order[0], ring.owner(key));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..7).collect::<Vec<_>>(), "a permutation");
        }
    }

    #[test]
    fn shares_sum_to_one_and_vnodes_tighten_balance() {
        let ring = Ring::new(4, 64);
        let total: f64 = ring.shares().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
        // more vnodes => strictly closer to the ideal share
        let coarse = Ring::new(4, 1).imbalance();
        let fine = Ring::new(4, 256).imbalance();
        assert!(fine >= 1.0);
        assert!(fine < coarse, "vnodes reduce imbalance: {fine} < {coarse}");
        assert!(fine < 1.5, "256 vnodes keeps the hottest arc under 1.5x");
    }

    #[test]
    fn keys_spread_over_all_replicas() {
        let ring = Ring::new(3, 64);
        let mut counts = [0usize; 3];
        for key in 0..3000u64 {
            counts[ring.owner(key)] += 1;
        }
        for (replica, &count) in counts.iter().enumerate() {
            assert!(count > 500, "replica {replica} got {count}/3000 keys");
        }
    }

    #[test]
    fn degenerate_sizes_are_floored() {
        let ring = Ring::new(0, 0);
        assert_eq!(ring.replicas(), 1);
        assert_eq!(ring.vnodes(), 1);
        assert_eq!(ring.owner(42), 0);
        assert_eq!(ring.successors(42), vec![0]);
        assert!((ring.imbalance() - 1.0).abs() < 1e-9);
    }
}
