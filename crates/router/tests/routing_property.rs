//! Property tests of the routing layer over replica test doubles.
//!
//! The invariant the whole crate exists to protect: **incremental-upgrade
//! state never crosses replicas**. For any interleaving of submits,
//! upgrades, and drains, every session's upgrade lands on the replica
//! that holds its activation cache, and every routed session id decodes
//! to the replica that actually created it. Plus the restart property:
//! ring lookups are a pure function of `(replicas, vnodes, key)`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use proptest::prelude::*;
use stepping_core::SteppingError;
use stepping_router::{decode_session, Ring, Router, RouterConfig};
use stepping_serve::{
    AdmissionError, Outcome, ReplicaHandle, Request, Response, ServeError, ServerStats, Ticket,
};
use stepping_tensor::{Shape, Tensor};

/// An in-memory replica: a session table and nothing else. Tickets
/// resolve synchronously, so the property test drives thousands of ops
/// without worker pools.
#[derive(Debug)]
struct MockReplica {
    sessions: Mutex<HashMap<u64, usize>>,
    next_session: AtomicU64,
    draining: AtomicBool,
    /// When set, every submit is refused (simulates overload/shutdown).
    refuse: AtomicBool,
    submits: AtomicU64,
    upgrades: AtomicU64,
}

impl MockReplica {
    fn new() -> Self {
        MockReplica {
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            refuse: AtomicBool::new(false),
            submits: AtomicU64::new(0),
            upgrades: AtomicU64::new(0),
        }
    }

    fn table(&self) -> std::sync::MutexGuard<'_, HashMap<u64, usize>> {
        self.sessions.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn owns(&self, local: u64) -> bool {
        self.table().contains_key(&local)
    }

    fn response(&self, session: u64, subnet: usize) -> Response {
        Response {
            id: session,
            session,
            subnet,
            logits: Tensor::zeros(Shape::of(&[1, 2])),
            step_macs: 1,
            total_macs: 1 + subnet as u64,
            modeled_latency_us: 1.0,
            latency_us: 1.0,
            outcome: Outcome::Met,
            batch_size: 1,
            cache_reuse: 0.0,
        }
    }
}

impl ReplicaHandle for MockReplica {
    fn submit(&self, _request: Request) -> Result<Ticket, ServeError> {
        if self.refuse.load(Ordering::SeqCst) {
            return Err(AdmissionError::QueueFull {
                depth: 1,
                capacity: 1,
            }
            .into());
        }
        if self.draining.load(Ordering::SeqCst) {
            return Err(AdmissionError::Draining.into());
        }
        let session = self.next_session.fetch_add(1, Ordering::SeqCst);
        self.table().insert(session, 0);
        self.submits.fetch_add(1, Ordering::SeqCst);
        Ok(Ticket::resolved(Ok(self.response(session, 0))))
    }

    fn upgrade(&self, session: u64, _extra: Option<f64>) -> Result<Ticket, ServeError> {
        let mut table = self.table();
        let subnet = *table
            .get(&session)
            .ok_or_else(|| SteppingError::BadConfig(format!("unknown session {session}")))?;
        table.insert(session, subnet + 1);
        drop(table);
        self.upgrades.fetch_add(1, Ordering::SeqCst);
        Ok(Ticket::resolved(Ok(self.response(session, subnet + 1))))
    }

    fn release(&self, session: u64) {
        self.table().remove(&session);
    }

    fn session_count(&self) -> usize {
        self.table().len()
    }

    fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn shutdown(&self) {}

    fn stats(&self) -> ServerStats {
        ServerStats::default()
    }
}

fn fleet(replicas: usize) -> (Vec<Arc<MockReplica>>, Router) {
    let mocks: Vec<Arc<MockReplica>> = (0..replicas)
        .map(|_| Arc::new(MockReplica::new()))
        .collect();
    let handles: Vec<Arc<dyn ReplicaHandle>> = mocks
        .iter()
        .map(|m| Arc::clone(m) as Arc<dyn ReplicaHandle>)
        .collect();
    let config = RouterConfig::builder().vnodes(32).build();
    let router = Router::new(handles, &config).unwrap();
    (mocks, router)
}

fn request() -> Request {
    Request::at_subnet(Tensor::zeros(Shape::of(&[1, 2])), 0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// For any interleaving of submits, upgrades, releases, and drains:
    /// every routed session decodes to the replica that actually holds
    /// it, and every upgrade is served by that same replica — zero
    /// cross-replica leaks.
    #[test]
    fn upgrades_always_land_on_the_owning_replica(
        replicas in 1usize..6,
        ops in proptest::collection::vec((0u8..10, 0u64..1_000_000), 1..120),
    ) {
        let (mocks, router) = fleet(replicas);
        let mut live: Vec<u64> = Vec::new();
        for (kind, key) in ops {
            match kind {
                // drain a replica (at most replicas-1 so someone accepts)
                0 if replicas > 1 => {
                    let candidate = (key as usize) % replicas;
                    let draining = mocks.iter().filter(|m| m.is_draining()).count();
                    if draining + 1 < replicas {
                        router.drain(candidate).unwrap();
                    }
                }
                // upgrade a random live session
                1 | 2 | 3 if !live.is_empty() => {
                    let session = live[(key as usize) % live.len()];
                    let (replica, local) = decode_session(session);
                    let before = mocks[replica].upgrades.load(Ordering::SeqCst);
                    let resp = router.upgrade(session, None).unwrap().wait().unwrap();
                    // the upgrade ran on the replica encoded in the id...
                    prop_assert_eq!(mocks[replica].upgrades.load(Ordering::SeqCst), before + 1);
                    // ...which really holds the session
                    prop_assert!(mocks[replica].owns(local), "cache crossed replicas");
                    prop_assert_eq!(resp.session, session, "sticky id survives the upgrade");
                }
                // release a random live session
                4 if !live.is_empty() => {
                    let session = live.swap_remove((key as usize) % live.len());
                    router.release(session);
                    let (replica, local) = decode_session(session);
                    prop_assert!(!mocks[replica].owns(local), "release reached the owner");
                }
                // submit a new session
                _ => {
                    let ticket = router.submit(key, request()).unwrap();
                    let placed = ticket.replica();
                    prop_assert!(!mocks[placed].is_draining(), "routed to a draining replica");
                    let resp = ticket.wait().unwrap();
                    let (replica, local) = decode_session(resp.session);
                    prop_assert_eq!(replica, placed, "id encodes the serving replica");
                    prop_assert!(mocks[replica].owns(local), "replica holds the new session");
                    live.push(resp.session);
                }
            }
        }
        // end-to-end accounting: every live session is still held by the
        // replica its id names, and nothing leaked elsewhere
        for &session in &live {
            let (replica, local) = decode_session(session);
            prop_assert!(mocks[replica].owns(local));
        }
        let held: usize = mocks.iter().map(|m| m.session_count()).sum();
        prop_assert_eq!(held, live.len(), "no session lost or duplicated");
    }

    /// Ring lookups are deterministic across process "restarts": a ring
    /// rebuilt from the same `(replicas, vnodes)` maps every key to the
    /// same owner and the same failover order.
    #[test]
    fn ring_lookups_survive_restart(
        replicas in 1usize..9,
        vnodes in 1usize..129,
        keys in proptest::collection::vec(0u64..u64::MAX, 1..64),
    ) {
        let first = Ring::new(replicas, vnodes);
        let rebuilt = Ring::new(replicas, vnodes);
        for key in keys {
            prop_assert_eq!(first.owner(key), rebuilt.owner(key));
            prop_assert_eq!(first.successors(key), rebuilt.successors(key));
        }
    }

    /// A refusing owner trips its breaker after enough failures and new
    /// sessions fail over; the owner's existing sessions still upgrade on
    /// the owner throughout.
    #[test]
    fn refusing_owner_sheds_new_sessions_but_keeps_old_ones(
        key in 0u64..1_000_000,
        extra in 1usize..40,
    ) {
        let (mocks, router) = fleet(2);
        let owner = router.owner_of(key);
        let resp = router.submit(key, request()).unwrap().wait().unwrap();
        prop_assert_eq!(decode_session(resp.session).0, owner);
        // owner starts refusing (overload); new sessions with the same key
        // must land on the other replica, never error out
        mocks[owner].refuse.store(true, Ordering::SeqCst);
        for _ in 0..extra {
            let ticket = router.submit(key, request()).unwrap();
            prop_assert_eq!(ticket.replica(), 1 - owner, "failover to the survivor");
            ticket.wait().unwrap();
        }
        // the original session never moved
        let upgraded = router.upgrade(resp.session, None).unwrap().wait().unwrap();
        prop_assert_eq!(decode_session(upgraded.session).0, owner);
        prop_assert_eq!(upgraded.subnet, 1);
    }
}
