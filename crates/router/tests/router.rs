//! Integration tests: the router over real [`Server`] replicas.
//!
//! The acceptance bar for scale-out serving: a two-replica fleet goes
//! through a full drain + failover cycle with **zero lost tickets** and
//! **zero cross-replica session leaks** — every submitted request is
//! answered, and every upgrade is served by the replica that holds the
//! session's activation cache.

use std::time::Duration;

use stepping_baselines::regular_assign;
use stepping_core::{SteppingNet, SteppingNetBuilder};
use stepping_router::{decode_session, BreakerState, Router, RouterConfig};
use stepping_runtime::{DeviceModel, SessionConfig};
use stepping_serve::{AdmissionError, Request, ServeConfig, ServeError};
use stepping_tensor::{init, Shape, Tensor};

fn net() -> SteppingNet {
    let mut n = SteppingNetBuilder::new(Shape::of(&[6]), 3, 11)
        .linear(16)
        .relu()
        .linear(12)
        .relu()
        .build(4)
        .unwrap();
    regular_assign(&mut n, &[0.3, 0.6, 1.0]).unwrap();
    n
}

fn sample(seed: u64) -> Tensor {
    init::uniform(Shape::of(&[1, 6]), -1.0, 1.0, &mut init::rng(seed))
}

fn serve_config(workers: usize) -> ServeConfig {
    ServeConfig::builder()
        .workers(workers)
        .max_batch(4)
        .max_wait(Duration::from_micros(100))
        .session(SessionConfig::new().device(DeviceModel::new(1000.0)))
        .build()
}

#[test]
fn two_replica_drain_and_failover_cycle_loses_nothing() {
    let router = Router::launch(
        &net(),
        &serve_config(1),
        &RouterConfig::builder().replicas(2).vnodes(64).build(),
    )
    .unwrap();
    assert_eq!(router.replica_count(), 2);

    // Phase 1: place sessions under distinct keys; both replicas get some.
    let mut sessions = Vec::new();
    for key in 0..40u64 {
        let ticket = router
            .submit(key * 7919, Request::at_subnet(sample(key), 0))
            .unwrap();
        let placed = ticket.replica();
        assert_eq!(
            placed,
            router.owner_of(key * 7919),
            "healthy fleet routes to the ring owner"
        );
        let resp = ticket.wait().expect("lost a ticket in phase 1");
        assert_eq!(decode_session(resp.session).0, placed);
        sessions.push(resp.session);
    }
    let counts = router.session_counts();
    assert_eq!(counts.iter().sum::<usize>(), 40);
    assert!(
        counts.iter().all(|&c| c > 0),
        "both replicas own sessions: {counts:?}"
    );

    // Phase 2: every session upgrades — sticky to its cache-owning replica.
    for &session in &sessions {
        let (replica, _) = decode_session(session);
        let ticket = router.upgrade(session, None).unwrap();
        assert_eq!(ticket.replica(), replica, "upgrade crossed replicas");
        let resp = ticket.wait().expect("lost an upgrade ticket");
        assert_eq!(resp.session, session);
        assert_eq!(resp.subnet, 2);
        assert!(resp.cache_reuse > 0.0, "upgrade reused the session cache");
    }

    // Phase 3: drain replica 0. New sessions all land on replica 1; the
    // drained replica's existing sessions still upgrade in place.
    router.drain(0).unwrap();
    assert!(router.drain(9).is_err(), "out-of-range drain is refused");
    for key in 100..130u64 {
        let ticket = router
            .submit(key, Request::at_subnet(sample(key), 0))
            .unwrap();
        assert_eq!(ticket.replica(), 1, "draining replica got a new session");
        let resp = ticket.wait().expect("lost a ticket during drain");
        sessions.push(resp.session);
    }
    for &session in &sessions {
        let (replica, _) = decode_session(session);
        let resp = router
            .upgrade(session, None)
            .unwrap()
            .wait()
            .expect("lost a post-drain upgrade");
        assert_eq!(decode_session(resp.session).0, replica);
    }

    // Phase 4: release everything; the drained replica bleeds to empty.
    assert!(!router.drained(0), "still holds sessions");
    for session in sessions.drain(..) {
        router.release(session);
    }
    assert!(router.drained(0), "drained replica is empty");
    assert_eq!(router.session_counts(), vec![0, 0]);

    // Phase 5: with replica 0 gone and replica 1 alone, traffic still flows.
    let resp = router
        .submit(5, Request::full(sample(5)))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(decode_session(resp.session).0, 1);
    router.release(resp.session);

    router.shutdown();
    // 40 + 30 submits, 40 + 70 upgrades, 1 final submit
    let total: u64 = (0..2).map(|r| router.stats(r).unwrap().requests).sum();
    assert_eq!(total, 70 + 110 + 1, "every ticket was served exactly once");
}

#[test]
fn shutdown_replica_trips_breaker_and_fails_over() {
    // small breaker so the trip happens within the test
    let config = RouterConfig::builder()
        .replicas(2)
        .breaker_window(4)
        .breaker_trip_ratio(0.5)
        .breaker_cooldown(1_000)
        .build();
    let router = Router::launch(&net(), &serve_config(1), &config).unwrap();

    // find a key owned by replica 0, then hard-kill that replica (no
    // drain: simulates a crash the router only sees as shutdown errors)
    let key = (0u64..).find(|&k| router.owner_of(k) == 0).unwrap();
    // shut down replica 0 directly through its stats-bearing handle: the
    // router API has no "kill", so drive it via a session's replica
    let probe = router
        .submit(key, Request::at_subnet(sample(1), 0))
        .unwrap();
    assert_eq!(probe.replica(), 0);
    let session = probe.wait().unwrap().session;
    router.release(session);
    // drain-then-shutdown replica 0 out-of-band
    router.drain(0).unwrap();
    // new sessions fail over; no submit ever errors out
    for i in 0..8u64 {
        let ticket = router
            .submit(key.wrapping_add(i), Request::at_subnet(sample(i), 0))
            .unwrap();
        assert_eq!(ticket.replica(), 1);
        let resp = ticket.wait().unwrap();
        router.release(resp.session);
    }
    // the drained replica was *skipped*, not failed: breaker stays closed
    assert_eq!(router.breaker_state(0), Some(BreakerState::Closed));

    // now make replica 1 refuse too (drain) — nothing left to serve
    router.drain(1).unwrap();
    match router.submit(key, Request::at_subnet(sample(2), 0)) {
        Err(ServeError::Admission(AdmissionError::Draining)) => {}
        other => panic!("expected Draining when the whole fleet refuses, got {other:?}"),
    }
    router.shutdown();
}

#[test]
fn sticky_ids_reject_unknown_replicas() {
    let router = Router::launch(
        &net(),
        &serve_config(1),
        &RouterConfig::builder().replicas(1).build(),
    )
    .unwrap();
    // a forged session naming replica 3 of a 1-replica fleet
    let forged = stepping_router::encode_session(3, 17);
    assert!(matches!(
        router.upgrade(forged, None),
        Err(ServeError::Invalid(_))
    ));
    router.release(forged); // ignored, like Server::release of an unknown id
    router.shutdown();
}
